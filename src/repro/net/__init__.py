"""Simulated network: authenticated channels under adversarial delay and loss.

The adversary controls message *delays* (never integrity or authenticity)
and — when a loss model is installed — *delivery*.  Delay models implement
the paper's three network regimes:

- synchrony: every delay ≤ Δ,
- asynchrony: finite but unbounded/adversarial delays (including the
  leader-targeting scheduler that breaks partially synchronous protocols),
- partial synchrony: asynchronous until GST, synchronous after.

Loss models (drop, duplication, bursts, partitions) withdraw the paper's
reliable-link assumption; :class:`ReliableNetwork` restores it with
sequence numbers, acks and retransmission, so the protocol layer stays
written against reliable links either way.
"""

from repro.net.conditions import (
    AsynchronousDelay,
    DelayModel,
    LeaderTargetingAdversary,
    NetworkSchedule,
    PartialSynchronyDelay,
    PartitionDelay,
    SynchronousDelay,
)
from repro.net.bandwidth import BandwidthDelay
from repro.net.loss import (
    BurstLoss,
    IIDLoss,
    LossModel,
    NoLoss,
    PartitionLoss,
    ScheduledLoss,
    TargetedLoss,
)
from repro.net.network import Network
from repro.net.reliable import AckPacket, ChannelConfig, DataPacket, ReliableNetwork
from repro.net.topology import CrossRegionDelay, evenly_spread_regions

__all__ = [
    "AckPacket",
    "AsynchronousDelay",
    "BandwidthDelay",
    "BurstLoss",
    "ChannelConfig",
    "CrossRegionDelay",
    "DataPacket",
    "DelayModel",
    "IIDLoss",
    "LeaderTargetingAdversary",
    "LossModel",
    "Network",
    "NetworkSchedule",
    "NoLoss",
    "PartialSynchronyDelay",
    "PartitionDelay",
    "PartitionLoss",
    "ReliableNetwork",
    "ScheduledLoss",
    "SynchronousDelay",
    "TargetedLoss",
    "evenly_spread_regions",
]
