"""Simulated network: reliable authenticated channels under adversarial delay.

The adversary controls message *delays* (never integrity, authenticity or
eventual delivery — channels are reliable).  Delay models implement the
paper's three network regimes:

- synchrony: every delay ≤ Δ,
- asynchrony: finite but unbounded/adversarial delays (including the
  leader-targeting scheduler that breaks partially synchronous protocols),
- partial synchrony: asynchronous until GST, synchronous after.
"""

from repro.net.conditions import (
    AsynchronousDelay,
    DelayModel,
    LeaderTargetingAdversary,
    NetworkSchedule,
    PartialSynchronyDelay,
    PartitionDelay,
    SynchronousDelay,
)
from repro.net.bandwidth import BandwidthDelay
from repro.net.network import Network
from repro.net.topology import CrossRegionDelay, evenly_spread_regions

__all__ = [
    "AsynchronousDelay",
    "BandwidthDelay",
    "DelayModel",
    "LeaderTargetingAdversary",
    "CrossRegionDelay",
    "Network",
    "NetworkSchedule",
    "PartialSynchronyDelay",
    "PartitionDelay",
    "SynchronousDelay",
    "evenly_spread_regions",
]
