"""Network delay models (the adversary's scheduling power).

Every model returns a *finite* delay for every message — channels are
reliable, so even the asynchronous adversary must eventually deliver.  The
models only differ in how large and how targeted the delays are.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Sequence


class DelayModel:
    """Base class: maps a (sender, receiver, message, time) to a delay."""

    def delay(
        self,
        sender: int,
        receiver: int,
        message: object,
        now: float,
        rng: random.Random,
    ) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class SynchronousDelay(DelayModel):
    """Synchrony: delays uniform in [min_delay, delta], all ≤ Δ."""

    def __init__(self, delta: float = 1.0, min_delay: float = 0.1) -> None:
        if not 0 < min_delay <= delta:
            raise ValueError("need 0 < min_delay <= delta")
        self.delta = delta
        self.min_delay = min_delay

    def delay(self, sender, receiver, message, now, rng) -> float:
        return rng.uniform(self.min_delay, self.delta)

    def describe(self) -> str:
        return f"sync(Δ={self.delta})"


class AsynchronousDelay(DelayModel):
    """Untargeted asynchrony: heavy-tailed (Pareto) delays.

    A fraction of messages take far longer than any reasonable timeout, so
    rounds keep failing even though everything is eventually delivered.
    """

    def __init__(
        self,
        base_delay: float = 0.1,
        tail_scale: float = 5.0,
        tail_alpha: float = 1.3,
        max_delay: float = 500.0,
    ) -> None:
        self.base_delay = base_delay
        self.tail_scale = tail_scale
        self.tail_alpha = tail_alpha
        self.max_delay = max_delay

    def delay(self, sender, receiver, message, now, rng) -> float:
        tail = self.tail_scale * (rng.paretovariate(self.tail_alpha) - 1.0)
        return min(self.base_delay + tail, self.max_delay)

    def describe(self) -> str:
        return f"async(pareto α={self.tail_alpha})"


class LeaderTargetingAdversary(DelayModel):
    """The strongest practical attack on leader-based protocols.

    An omniscient scheduler that delays every message to or from the
    replicas currently reported as "targets" (the current round leaders of
    the victim protocol) by ``attack_delay`` — far beyond any timeout — while
    keeping all other traffic fast.  Against DiemBFT's pacemaker this
    prevents any QC from ever forming (no liveness); against the fallback
    protocol it merely forces the fallback path, which is leaderless until
    the retroactive coin flip, so progress continues.

    Args:
        targets: callable returning the replica ids to suppress *now*.
        attack_delay: delay applied to suppressed traffic.
        fast: model for non-targeted traffic.
    """

    def __init__(
        self,
        targets: Callable[[], Iterable[int]],
        attack_delay: float = 60.0,
        fast: Optional[DelayModel] = None,
    ) -> None:
        self.targets = targets
        self.attack_delay = attack_delay
        self.fast = fast or SynchronousDelay()

    def delay(self, sender, receiver, message, now, rng) -> float:
        targets = self.targets()
        # The cluster oracle returns a (cached) set; only materialize a
        # fresh one for exotic target callables that yield an iterator.
        targeted = (
            targets
            if isinstance(targets, (set, frozenset))
            else set(targets)
        )
        if sender in targeted or receiver in targeted:
            # Jitter keeps the event order from degenerating.
            return self.attack_delay + rng.uniform(0.0, 1.0)
        return self.fast.delay(sender, receiver, message, now, rng)

    def describe(self) -> str:
        return f"leader-attack(d={self.attack_delay})"


class PartialSynchronyDelay(DelayModel):
    """Partially synchronous run: ``before`` until GST, ``after`` afterwards.

    Messages sent before GST arrive no earlier than GST would allow under
    the pre-GST model, but we additionally clamp the *arrival* to at most
    ``gst + after.delta``-style bounds by re-drawing from the post-GST model
    for messages sent after GST (the standard GST formulation only bounds
    post-GST sends; pre-GST messages keep their adversarial delays, which is
    what we model).
    """

    def __init__(self, gst: float, before: DelayModel, after: DelayModel) -> None:
        self.gst = gst
        self.before = before
        self.after = after

    def delay(self, sender, receiver, message, now, rng) -> float:
        if now >= self.gst:
            return self.after.delay(sender, receiver, message, now, rng)
        return self.before.delay(sender, receiver, message, now, rng)

    def describe(self) -> str:
        return f"partial-sync(GST={self.gst})"


class PartitionDelay(DelayModel):
    """Network partition that heals at ``heal_time``.

    Messages crossing group boundaries are held until the partition heals
    (plus a normal delay); intra-group traffic is unaffected.  Reliable
    delivery is preserved because the heal time is finite.
    """

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        heal_time: float,
        base: Optional[DelayModel] = None,
    ) -> None:
        self.group_of: dict[int, int] = {}
        for index, group in enumerate(groups):
            for replica in group:
                if replica in self.group_of:
                    raise ValueError(f"replica {replica} in two partition groups")
                self.group_of[replica] = index
        self.heal_time = heal_time
        self.base = base or SynchronousDelay()

    def delay(self, sender, receiver, message, now, rng) -> float:
        base_delay = self.base.delay(sender, receiver, message, now, rng)
        same_side = self.group_of.get(sender) == self.group_of.get(receiver)
        if same_side or now >= self.heal_time:
            return base_delay
        return (self.heal_time - now) + base_delay

    def describe(self) -> str:
        return f"partition(heal={self.heal_time})"


class NetworkSchedule(DelayModel):
    """Piecewise delay model: phases of (start_time, model).

    Used to script runs like "synchronous for 50s, asynchronous for 100s,
    synchronous again" (the paper's motivating deployment story).
    """

    def __init__(self, phases: Sequence[tuple[float, DelayModel]]) -> None:
        if not phases:
            raise ValueError("schedule needs at least one phase")
        self.phases = sorted(phases, key=lambda phase: phase[0])
        if self.phases[0][0] > 0:
            raise ValueError("first phase must start at time 0")

    def model_at(self, now: float) -> DelayModel:
        current = self.phases[0][1]
        for start, model in self.phases:
            if now >= start:
                current = model
            else:
                break
        return current

    def delay(self, sender, receiver, message, now, rng) -> float:
        return self.model_at(now).delay(sender, receiver, message, now, rng)

    def describe(self) -> str:
        parts = ", ".join(f"{start}:{model.describe()}" for start, model in self.phases)
        return f"schedule[{parts}]"
