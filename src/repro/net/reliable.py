"""Reliable channels over a lossy transport.

The protocol layer (replicas, clients) is written against the paper's
model: reliable authenticated point-to-point links.  When a
:class:`~repro.net.loss.LossModel` makes the wire lossy, this module
restores that abstraction *below* the protocol, so replica logic stays
byte-for-byte identical:

- every application message is wrapped in a :class:`DataPacket` carrying a
  per-(sender, receiver) sequence number,
- receivers acknowledge with cumulative acks (``everything <= c`` arrived)
  plus a bounded selective list of out-of-order sequence numbers — under
  adversarial delays reordering is pervasive, and cumulative-only acks
  would retransmit spuriously,
- senders retransmit unacknowledged packets with exponential backoff and
  jitter, giving up after ``max_attempts`` (protocol-level catch-up — block
  sync and client retransmission — covers anything the channel abandons),
- receivers deduplicate with a bounded out-of-order buffer, so duplicated
  deliveries (channel retransmissions *or* transport duplicates) reach the
  process at most once.

Crash semantics: a crashed process's network stack is down with it — its
pending retransmissions stop, and packets arriving for it are neither
delivered nor acknowledged (the peer keeps retrying into the recovery
window).  Channel state itself lives in the network layer and survives
recovery, modeling a long-lived session; messages consumed before the
crash are not replayed, which is exactly the gap the protocol's journaled
safety state and certificate-driven block sync are designed to fill.

Overhead accounting: first transmissions fire the normal send hooks (the
metrics layer classifies them by payload type), while retransmissions and
acks are reported only through *channel hooks* — benchmarks can therefore
separate goodput from retransmit/ack overhead exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.conditions import DelayModel
from repro.net.loss import LossModel
from repro.net.network import Network, _wire_size
from repro.sim.scheduler import Scheduler, Timer

#: Modeled DataPacket header: a 8-byte sequence number.
DATA_HEADER_SIZE = 8
#: Modeled AckPacket base size: envelope (24) + 8-byte cumulative seq.
ACK_BASE_SIZE = 32
#: Each selective-ack entry costs 4 bytes on the wire.
ACK_ENTRY_SIZE = 4

#: Channel hook signature: (kind, sender, receiver, packet, time) where
#: kind is one of "retransmit", "ack", "duplicate", "abandon".
ChannelHook = Callable[[str, int, int, object, float], None]


@dataclass(frozen=True)
class DataPacket:
    """An application message framed with a per-link sequence number."""

    seq: int
    payload: object

    def wire_size(self) -> int:
        return DATA_HEADER_SIZE + _wire_size(self.payload)


@dataclass(frozen=True)
class AckPacket:
    """Cumulative acknowledgment for the reverse link.

    ``cumulative`` means every sequence number <= it has been received;
    ``selective`` lists received out-of-order sequence numbers above it.
    """

    cumulative: int
    selective: tuple[int, ...] = ()

    def wire_size(self) -> int:
        return ACK_BASE_SIZE + ACK_ENTRY_SIZE * len(self.selective)


@dataclass(frozen=True)
class ChannelConfig:
    """Tuning knobs for the reliable-channel layer.

    Attributes:
        initial_rto: first retransmission timeout (simulated time).  The
            default suits the default ``SynchronousDelay(delta=1.0)``; scale
            it with the expected RTT of the configured delay model.
        backoff: multiplicative RTO growth per retransmission.
        max_rto: RTO ceiling.
        jitter: each RTO is stretched by uniform(0, jitter * rto) so
            synchronized losses don't resynchronize retransmissions.
        max_attempts: retransmissions per packet before the channel gives
            up (protocol-level sync covers abandoned packets).
        max_selective: out-of-order sequence numbers carried per ack.
        window: receiver-side out-of-order buffer bound per link; overflow
            advances the cumulative floor (counted, sacrifices exactly-once
            for the oldest gap).
        max_unacked: sender-side retransmit buffer bound per link; overflow
            abandons the oldest packet (counted).
    """

    initial_rto: float = 3.0
    backoff: float = 2.0
    max_rto: float = 30.0
    jitter: float = 0.5
    max_attempts: int = 8
    max_selective: int = 32
    window: int = 1024
    max_unacked: int = 4096

    def __post_init__(self) -> None:
        if self.initial_rto <= 0:
            raise ValueError("initial_rto must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_rto < self.initial_rto:
            raise ValueError("max_rto must be >= initial_rto")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.window < 1 or self.max_unacked < 1:
            raise ValueError("buffer bounds must be >= 1")

    def rto_for_attempt(self, attempt: int) -> float:
        """Backed-off RTO before jitter for the given attempt (0-based)."""
        return min(self.initial_rto * self.backoff**attempt, self.max_rto)


@dataclass
class _Pending:
    """Sender-side state for one unacknowledged packet."""

    packet: DataPacket
    attempt: int = 0
    timer: Optional[Timer] = None

    def cancel(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


@dataclass
class _SenderLink:
    """Per-(sender, receiver) outbound channel state."""

    next_seq: int = 0
    unacked: dict[int, _Pending] = field(default_factory=dict)


@dataclass
class _ReceiverState:
    """Per-(sender, receiver) inbound dedup state."""

    cumulative: int = -1
    seen: set[int] = field(default_factory=set)

    def is_duplicate(self, seq: int) -> bool:
        return seq <= self.cumulative or seq in self.seen

    def record(self, seq: int) -> None:
        self.seen.add(seq)
        while (self.cumulative + 1) in self.seen:
            self.cumulative += 1
            self.seen.discard(self.cumulative)


class ReliableNetwork(Network):
    """A :class:`Network` that runs every directed send through a reliable
    channel, restoring exactly-once delivery over a lossy transport.

    Drop-in replacement: replicas and clients keep calling ``send`` /
    ``multicast`` with raw protocol messages and keep receiving raw
    protocol messages; framing, acks, retransmission and dedup happen
    entirely inside the network layer.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        delay_model: Optional[DelayModel] = None,
        loss_model: Optional[LossModel] = None,
        channel: Optional[ChannelConfig] = None,
        self_delivery_delay: float = 0.0,
    ) -> None:
        super().__init__(
            scheduler,
            delay_model=delay_model,
            loss_model=loss_model,
            self_delivery_delay=self_delivery_delay,
        )
        self.channel = channel or ChannelConfig()
        self._channel_rng = scheduler.child_rng("reliable-channel")
        self._out: dict[tuple[int, int], _SenderLink] = {}
        self._in: dict[tuple[int, int], _ReceiverState] = {}
        self._channel_hooks: list[ChannelHook] = []
        self.retransmissions = 0
        self.acks_sent = 0
        self.duplicates_suppressed = 0
        self.packets_abandoned = 0
        self.window_evictions = 0

    def add_channel_hook(self, hook: ChannelHook) -> None:
        """Register a hook for channel-internal events (retransmit/ack/
        duplicate/abandon) — the overhead invisible to send hooks."""
        self._channel_hooks.append(hook)

    def _emit(self, kind: str, sender: int, receiver: int, packet: object) -> None:
        for hook in self._channel_hooks:
            hook(kind, sender, receiver, packet, self.scheduler.now)

    # ------------------------------------------------------------------
    # Sending: frame, transmit, arm the retransmit timer
    # ------------------------------------------------------------------
    def send(self, sender: int, receiver: int, message: object) -> None:
        if receiver == sender or receiver not in self._processes:
            # Self-delivery stays immediate and channel-free; unknown
            # receivers raise in the base class.
            super().send(sender, receiver, message)
            return
        link = self._out.setdefault((sender, receiver), _SenderLink())
        seq = link.next_seq
        link.next_seq += 1
        packet = DataPacket(seq=seq, payload=message)
        pending = _Pending(packet=packet)
        link.unacked[seq] = pending
        if len(link.unacked) > self.channel.max_unacked:
            oldest = min(link.unacked)
            abandoned = link.unacked.pop(oldest)
            abandoned.cancel()
            self.packets_abandoned += 1
            self._emit("abandon", sender, receiver, abandoned.packet)
        self._transmit(sender, receiver, packet, notify=True)
        self._arm_retransmit(sender, receiver, pending)

    def _arm_retransmit(self, sender: int, receiver: int, pending: _Pending) -> None:
        rto = self.channel.rto_for_attempt(pending.attempt)
        rto += self._channel_rng.uniform(0.0, self.channel.jitter * rto)
        pending.timer = self.scheduler.set_timer(
            rto,
            lambda: self._retransmit(sender, receiver, pending.packet.seq),
            label=f"rto:{sender}->{receiver}:{pending.packet.seq}",
        )

    def _retransmit(self, sender: int, receiver: int, seq: int) -> None:
        link = self._out.get((sender, receiver))
        if link is None:
            return
        pending = link.unacked.get(seq)
        if pending is None:
            return  # acked in the meantime
        sender_process = self._processes.get(sender)
        if sender_process is not None and sender_process.crashed:
            # The sending host is down; its network stack is too.
            del link.unacked[seq]
            self.packets_abandoned += 1
            self._emit("abandon", sender, receiver, pending.packet)
            return
        pending.attempt += 1
        if pending.attempt > self.channel.max_attempts:
            del link.unacked[seq]
            self.packets_abandoned += 1
            self._emit("abandon", sender, receiver, pending.packet)
            return
        self.retransmissions += 1
        self._emit("retransmit", sender, receiver, pending.packet)
        self._transmit(sender, receiver, pending.packet, notify=False)
        self._arm_retransmit(sender, receiver, pending)

    # ------------------------------------------------------------------
    # Receiving: dedup, ack, unwrap
    # ------------------------------------------------------------------
    def _deliver(self, sender: int, receiver: int, message: object) -> None:
        if isinstance(message, AckPacket):
            self._handle_ack(sender, receiver, message)
        elif isinstance(message, DataPacket):
            self._handle_data(sender, receiver, message)
        else:
            super()._deliver(sender, receiver, message)

    def _handle_data(self, sender: int, receiver: int, packet: DataPacket) -> None:
        target = self._processes[receiver]
        if target.crashed:
            return  # host down: no delivery, no ack — the peer keeps retrying
        state = self._in.setdefault((sender, receiver), _ReceiverState())
        fresh = not state.is_duplicate(packet.seq)
        if fresh:
            state.record(packet.seq)
            while len(state.seen) > self.channel.window:
                # Bounded buffer: advance the floor past the oldest gap.
                state.cumulative = min(state.seen)
                state.seen.discard(state.cumulative)
                self.window_evictions += 1
        else:
            self.duplicates_suppressed += 1
            self._emit("duplicate", sender, receiver, packet)
        self._send_ack(receiver, sender, state)
        if fresh:
            target.deliver(sender, packet.payload)

    def _send_ack(self, from_id: int, to_id: int, state: _ReceiverState) -> None:
        selective = tuple(sorted(state.seen)[-self.channel.max_selective :])
        ack = AckPacket(cumulative=state.cumulative, selective=selective)
        self.acks_sent += 1
        self._emit("ack", from_id, to_id, ack)
        self._transmit(from_id, to_id, ack, notify=False)

    def _handle_ack(self, sender: int, receiver: int, ack: AckPacket) -> None:
        # The ack traveled sender -> receiver and acknowledges the data
        # link receiver -> sender.
        link = self._out.get((receiver, sender))
        if link is None:
            return
        selective = set(ack.selective)
        acked = [
            seq for seq in link.unacked if seq <= ack.cumulative or seq in selective
        ]
        for seq in acked:
            link.unacked.pop(seq).cancel()

    # ------------------------------------------------------------------
    # Introspection (tests, benchmarks)
    # ------------------------------------------------------------------
    def unacked_count(self, sender: int, receiver: int) -> int:
        link = self._out.get((sender, receiver))
        return len(link.unacked) if link else 0

    def channel_summary(self) -> str:
        return (
            f"retransmissions={self.retransmissions} acks={self.acks_sent} "
            f"duplicates_suppressed={self.duplicates_suppressed} "
            f"abandoned={self.packets_abandoned} "
            f"window_evictions={self.window_evictions}"
        )
