"""Bandwidth-limited links: serialization delay and queueing.

The pure delay models treat messages as points; real links serialize bytes.
:class:`BandwidthDelay` wraps any latency model with per-link bandwidth:
each (sender, receiver) link transmits one message at a time at
``bytes_per_second``, so delivery time is

    max(now, link_free_at) + size / bandwidth + latency

and the link stays busy for the serialization time.  This makes *block
size* matter — the knob behind the batching ablation: bigger batches
amortize per-message latency but inflate serialization and queueing.
"""

from __future__ import annotations

from typing import Optional

from repro.net.conditions import DelayModel, SynchronousDelay


class BandwidthDelay(DelayModel):
    """Latency + per-link serialization/queueing delay."""

    def __init__(
        self,
        bytes_per_second: float,
        latency: Optional[DelayModel] = None,
        per_link: bool = True,
    ) -> None:
        if bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        self.bytes_per_second = bytes_per_second
        self.latency = latency or SynchronousDelay()
        self.per_link = per_link
        #: link key -> simulated time the link becomes free.
        self._free_at: dict[object, float] = {}

    def _link_key(self, sender: int, receiver: int) -> object:
        # Per-link: each ordered pair has its own capacity (a mesh fabric).
        # Otherwise: the sender's uplink is the bottleneck (NIC model).
        return (sender, receiver) if self.per_link else sender

    def delay(self, sender, receiver, message, now, rng) -> float:
        size = getattr(message, "wire_size", lambda: 64)()
        serialization = size / self.bytes_per_second
        key = self._link_key(sender, receiver)
        start = max(now, self._free_at.get(key, 0.0))
        self._free_at[key] = start + serialization
        queueing = start - now
        latency = self.latency.delay(sender, receiver, message, now, rng)
        return queueing + serialization + latency

    def describe(self) -> str:
        scope = "link" if self.per_link else "uplink"
        return f"bandwidth({self.bytes_per_second:.0f}B/s per {scope})"

    def utilization_horizon(self) -> float:
        """Latest time any link is scheduled to be busy (for tests)."""
        return max(self._free_at.values(), default=0.0)
