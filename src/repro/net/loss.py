"""Loss models: the adversary's power over *delivery*, not just delay.

The paper assumes reliable authenticated links, and the rest of the
codebase keeps that as the provable default (``NoLoss``).  These models
let experiments drop, duplicate and burst-corrupt traffic the way a real
transport does; the :class:`~repro.net.reliable.ReliableNetwork` channel
layer then re-establishes the paper's link guarantees on top.

The interface is a single method: how many *copies* of this message reach
the wire (0 = dropped, 1 = normal delivery, 2+ = duplicated).  Each copy
is then delayed independently by the configured
:class:`~repro.net.conditions.DelayModel`, so every loss model composes
with every delay model.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence


class LossModel:
    """Maps a (sender, receiver, message, time) to a delivered-copy count."""

    def copies(
        self,
        sender: int,
        receiver: int,
        message: object,
        now: float,
        rng: random.Random,
    ) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class NoLoss(LossModel):
    """The paper's model: every message delivered exactly once.

    Consumes no randomness, so a cluster built with ``NoLoss`` behaves
    identically (event for event) to one built without any loss model.
    """

    def copies(self, sender, receiver, message, now, rng) -> int:
        return 1

    def describe(self) -> str:
        return "no-loss"


class IIDLoss(LossModel):
    """Independent per-message loss and duplication.

    Each message is dropped with probability ``drop``; surviving messages
    are duplicated with probability ``duplicate`` (an extra copy each,
    geometrically, capped at ``max_copies`` total).
    """

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        max_copies: int = 3,
    ) -> None:
        if not 0.0 <= drop < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        if not 0.0 <= duplicate < 1.0:
            raise ValueError("duplicate probability must be in [0, 1)")
        if max_copies < 1:
            raise ValueError("max_copies must be >= 1")
        self.drop = drop
        self.duplicate = duplicate
        self.max_copies = max_copies

    def copies(self, sender, receiver, message, now, rng) -> int:
        if self.drop and rng.random() < self.drop:
            return 0
        count = 1
        while (
            count < self.max_copies
            and self.duplicate
            and rng.random() < self.duplicate
        ):
            count += 1
        return count

    def describe(self) -> str:
        return f"iid(drop={self.drop}, dup={self.duplicate})"


class BurstLoss(LossModel):
    """Gilbert–Elliott bursty loss: a two-state Markov chain per link.

    Each ordered (sender, receiver) link is independently in a *good* or
    *bad* state; per message, the link first transitions (good→bad with
    ``p_enter_bad``, bad→good with ``p_exit_bad``) and then drops with the
    state's loss rate.  Mean burst length is ``1 / p_exit_bad`` messages.
    """

    def __init__(
        self,
        p_enter_bad: float = 0.05,
        p_exit_bad: float = 0.25,
        good_drop: float = 0.0,
        bad_drop: float = 0.9,
    ) -> None:
        for name, value in (
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("good_drop", good_drop),
            ("bad_drop", bad_drop),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if p_exit_bad == 0.0:
            raise ValueError("p_exit_bad must be positive (bursts must end)")
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.good_drop = good_drop
        self.bad_drop = bad_drop
        self._bad_links: set[tuple[int, int]] = set()

    def copies(self, sender, receiver, message, now, rng) -> int:
        link = (sender, receiver)
        if link in self._bad_links:
            if rng.random() < self.p_exit_bad:
                self._bad_links.discard(link)
        elif rng.random() < self.p_enter_bad:
            self._bad_links.add(link)
        drop = self.bad_drop if link in self._bad_links else self.good_drop
        if drop and rng.random() < drop:
            return 0
        return 1

    def describe(self) -> str:
        return f"burst(enter={self.p_enter_bad}, exit={self.p_exit_bad})"


#: Predicate selecting the links a targeted model applies to.
LinkPredicate = Callable[[int, int], bool]


class TargetedLoss(LossModel):
    """Apply a loss model to selected links only; the rest pass through.

    Targets can be given as explicit ordered ``links`` (per-direction:
    ``(a, b)`` affects only a→b traffic; add ``(b, a)`` for both ways), as
    per-endpoint ``senders`` / ``receivers`` sets, or as an arbitrary
    ``predicate``.  A message is targeted if *any* selector matches.
    """

    def __init__(
        self,
        model: LossModel,
        links: Sequence[tuple[int, int]] = (),
        senders: Sequence[int] = (),
        receivers: Sequence[int] = (),
        predicate: Optional[LinkPredicate] = None,
        other: Optional[LossModel] = None,
    ) -> None:
        if not links and not senders and not receivers and predicate is None:
            raise ValueError("targeted loss needs at least one selector")
        self.model = model
        self.links = frozenset((int(a), int(b)) for a, b in links)
        self.senders = frozenset(senders)
        self.receivers = frozenset(receivers)
        self.predicate = predicate
        self.other = other or NoLoss()

    def _targeted(self, sender: int, receiver: int) -> bool:
        if (sender, receiver) in self.links:
            return True
        if sender in self.senders or receiver in self.receivers:
            return True
        return self.predicate is not None and self.predicate(sender, receiver)

    def copies(self, sender, receiver, message, now, rng) -> int:
        if self._targeted(sender, receiver):
            return self.model.copies(sender, receiver, message, now, rng)
        return self.other.copies(sender, receiver, message, now, rng)

    def describe(self) -> str:
        return f"targeted({self.model.describe()})"


class PartitionLoss(LossModel):
    """Total loss across partition-group boundaries.

    Unlike :class:`~repro.net.conditions.PartitionDelay` (which *holds*
    cross-partition messages until a fixed heal time, preserving reliable
    delivery), this model *drops* them — the realistic transport view.
    Healing is an external event: swap the model out (see
    ``faults.schedule.heal``), after which reliable channels retransmit
    whatever was lost.
    """

    def __init__(self, groups: Sequence[Sequence[int]], base: Optional[LossModel] = None) -> None:
        self.group_of: dict[int, int] = {}
        for index, group in enumerate(groups):
            for member in group:
                if member in self.group_of:
                    raise ValueError(f"replica {member} in two partition groups")
                self.group_of[member] = index
        self.base = base or NoLoss()

    def copies(self, sender, receiver, message, now, rng) -> int:
        if self.group_of.get(sender) != self.group_of.get(receiver):
            return 0
        return self.base.copies(sender, receiver, message, now, rng)

    def describe(self) -> str:
        groups: dict[int, list[int]] = {}
        for member, index in sorted(self.group_of.items()):
            groups.setdefault(index, []).append(member)
        return f"partition-loss{sorted(groups.values())}"


class ScheduledLoss(LossModel):
    """Piecewise loss model: phases of (start_time, model).

    The loss twin of :class:`~repro.net.conditions.NetworkSchedule`; useful
    to script "clean, then 20% loss, then clean" without the chaos engine.
    """

    def __init__(self, phases: Sequence[tuple[float, LossModel]]) -> None:
        if not phases:
            raise ValueError("schedule needs at least one phase")
        self.phases = sorted(phases, key=lambda phase: phase[0])
        if self.phases[0][0] > 0:
            raise ValueError("first phase must start at time 0")

    def model_at(self, now: float) -> LossModel:
        current = self.phases[0][1]
        for start, model in self.phases:
            if now >= start:
                current = model
            else:
                break
        return current

    def copies(self, sender, receiver, message, now, rng) -> int:
        return self.model_at(now).copies(sender, receiver, message, now, rng)

    def describe(self) -> str:
        parts = ", ".join(f"{start}:{model.describe()}" for start, model in self.phases)
        return f"loss-schedule[{parts}]"
