"""Deterministic, versioned binary codec for every protocol message.

Every message in :mod:`repro.types.messages` (plus the client messages)
encodes to a canonical byte string and decodes back to an equal object:
``decode_message(encode_message(sender, m)) == (sender, m)``.  The format
is self-describing enough to be safely fed garbage — every frame starts
with a version byte and a type tag drawn from a closed registry, all
variable-length fields are length-prefixed and bounds-checked, reserved
padding must be zero, and block ids are recomputed and compared on decode —
so unknown tags, truncation, trailing bytes and field corruption all raise
:class:`DecodeError` instead of producing a confused object (mirroring the
Flooder-garbage hardening in the simulator's validation layer).

Layout of one encoded message::

    version   u8     (WIRE_VERSION; bump on any layout change)
    type tag  u8     (registry below; 1-127 core, 128-255 extensions)
    sender    i16
    reserved  4 B    (zeros)
    auth slot 16 B   (zeros; where a real deployment puts the channel MAC)
    body      per-type encoding

The 24-byte envelope equals the modeled ``MESSAGE_OVERHEAD`` by design.
More generally the codec reserves *production-sized* slots for crypto
objects — 96 B for a combined threshold signature (BLS12-381-like), 48 B
per share, 32 B per digest, 96 B for a coin proof, 64 B for an author
signature, 48 B for certificate headers — carrying the simulation's
smaller stand-ins inside the slot with zero padding.  That makes
``encoded_size()`` track what a real deployment would put on the wire,
which is exactly what the modeled ``wire_size()`` estimates claim to
approximate; the parity test in ``tests/wire/test_wire_size_parity.py``
pins the two within a documented tolerance (|encoded - modeled| <=
max(16 bytes, 10%)).

Versioning rules: the version byte covers the entire layout.  Any change
to field order, widths, slot sizes or tag meanings bumps ``WIRE_VERSION``;
decoders reject other versions outright (no in-band negotiation — version
agreement is a deployment concern).  New message types may be added under
fresh tags without a version bump; reusing or renumbering a tag requires
one.  Extension tags 128-255 are never assigned by the core codec and are
reserved for :func:`register_message` callers.

Integers are 8-byte signed big-endian throughout; strings are u16
length-prefixed UTF-8; digests ship as 16 raw bytes (the in-memory hex id)
padded to the 32-byte modeled digest slot.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.client.client import ClientReply, ClientRequest
from repro.crypto.coin import CoinShare
from repro.crypto.hashing import DIGEST_WIRE_SIZE
from repro.crypto.signatures import SIGNATURE_WIRE_SIZE
from repro.crypto.threshold import (
    SHARE_WIRE_SIZE,
    THRESHOLD_SIG_WIRE_SIZE,
    ThresholdSignature,
    ThresholdSignatureShare,
)
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import (
    CERT_HEADER_WIRE_SIZE,
    COIN_QC_WIRE_SIZE,
    CoinQC,
    EndorsedFallbackQC,
    FallbackQC,
    FallbackTC,
    QC,
    TimeoutCertificate,
)
from repro.types.messages import (
    BlockRequest,
    BlockResponse,
    ChainRequest,
    ChainResponse,
    CoinQCMessage,
    CoinShareMessage,
    FallbackProposal,
    FallbackQCMessage,
    FallbackTCMessage,
    FallbackTimeout,
    FallbackVote,
    MESSAGE_OVERHEAD,
    PacemakerTCMessage,
    PacemakerTimeout,
    Proposal,
    Vote,
)
from repro.types.transactions import Batch, Transaction

#: Bump on ANY layout change (see module docstring for the rules).
WIRE_VERSION = 1

#: Envelope bytes before the body; equals the modeled MESSAGE_OVERHEAD.
ENVELOPE_SIZE = MESSAGE_OVERHEAD

#: Raw digest bytes actually carried inside the 32-byte digest slot.
_DIGEST_RAW_SIZE = 16

#: First type tag available to register_message extensions.
EXTENSION_TAG_BASE = 128


class CodecError(ValueError):
    """Base class for codec failures."""


class EncodeError(CodecError):
    """An object cannot be rendered in the wire format."""


class DecodeError(CodecError):
    """Bytes do not parse as a well-formed wire message."""


_I64 = struct.Struct(">q")
_I16 = struct.Struct(">h")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


# ----------------------------------------------------------------------
# Primitive writer / reader
# ----------------------------------------------------------------------
class _Writer:
    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise EncodeError(f"u8 out of range: {value}")
        self.buf.append(value)

    def u16(self, value: int) -> None:
        try:
            self.buf += _U16.pack(value)
        except struct.error as exc:
            raise EncodeError(f"u16 out of range: {value}") from exc

    def u32(self, value: int) -> None:
        try:
            self.buf += _U32.pack(value)
        except struct.error as exc:
            raise EncodeError(f"u32 out of range: {value}") from exc

    def i16(self, value: int) -> None:
        try:
            self.buf += _I16.pack(value)
        except struct.error as exc:
            raise EncodeError(f"i16 out of range: {value}") from exc

    def i64(self, value: int) -> None:
        try:
            self.buf += _I64.pack(value)
        except struct.error as exc:
            raise EncodeError(f"i64 out of range: {value}") from exc

    def f64(self, value: float) -> None:
        self.buf += _F64.pack(value)

    def pad(self, count: int) -> None:
        self.buf += bytes(count)

    def digest(self, value: str) -> None:
        try:
            raw = bytes.fromhex(value)
        except (ValueError, TypeError) as exc:
            raise EncodeError(f"digest is not hex: {value!r}") from exc
        if len(raw) != _DIGEST_RAW_SIZE:
            raise EncodeError(
                f"digest must be {_DIGEST_RAW_SIZE} raw bytes, got {len(raw)}"
            )
        self.buf += raw
        self.pad(DIGEST_WIRE_SIZE - _DIGEST_RAW_SIZE)

    def string(self, value: str) -> None:
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise EncodeError(f"string too long for wire: {len(encoded)} bytes")
        self.u16(len(encoded))
        self.buf += encoded


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise DecodeError(
                f"truncated: need {count} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def i16(self) -> int:
        return _I16.unpack(self._take(2))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def skip_zeros(self, count: int) -> None:
        chunk = self._take(count)
        if chunk.count(0) != count:
            raise DecodeError("nonzero bytes in reserved padding")

    def digest(self) -> str:
        raw = self._take(_DIGEST_RAW_SIZE)
        self.skip_zeros(DIGEST_WIRE_SIZE - _DIGEST_RAW_SIZE)
        return raw.hex()

    def string(self) -> str:
        length = self.u16()
        raw = self._take(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 in string field: {exc}") from exc

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise DecodeError(
                f"{len(self.data) - self.pos} trailing bytes after message body"
            )


# ----------------------------------------------------------------------
# Crypto objects (production-sized slots, zero-padded)
# ----------------------------------------------------------------------
def _write_tsig(w: _Writer, signature: ThresholdSignature) -> None:
    start = len(w.buf)
    w.i64(signature.epoch)
    w.digest(signature.tag)
    signers = sorted(signature.signers)
    w.u16(len(signers))
    for signer in signers:
        w.u16(signer)
    natural = len(w.buf) - start
    if natural < THRESHOLD_SIG_WIRE_SIZE:
        w.pad(THRESHOLD_SIG_WIRE_SIZE - natural)


def _read_tsig(r: _Reader) -> ThresholdSignature:
    start = r.pos
    epoch = r.i64()
    tag = r.digest()
    count = r.u16()
    signers = [r.u16() for _ in range(count)]
    unique = frozenset(signers)
    if len(unique) != count:
        raise DecodeError("duplicate signer in threshold signature")
    natural = r.pos - start
    if natural < THRESHOLD_SIG_WIRE_SIZE:
        r.skip_zeros(THRESHOLD_SIG_WIRE_SIZE - natural)
    return ThresholdSignature(epoch=epoch, tag=tag, signers=unique)


def _write_share(w: _Writer, share: ThresholdSignatureShare) -> None:
    w.i64(share.signer)
    w.i64(share.epoch)
    w.digest(share.tag)


def _read_share(r: _Reader) -> ThresholdSignatureShare:
    return ThresholdSignatureShare(signer=r.i64(), epoch=r.i64(), tag=r.digest())


assert 8 + 8 + DIGEST_WIRE_SIZE == SHARE_WIRE_SIZE  # share slot is exact


def _write_coin_share(w: _Writer, share: CoinShare) -> None:
    w.i64(share.signer)
    w.i64(share.view)
    w.i64(share.epoch)
    w.digest(share.tag)


def _read_coin_share(r: _Reader) -> CoinShare:
    return CoinShare(signer=r.i64(), view=r.i64(), epoch=r.i64(), tag=r.digest())


_COIN_QC_NATURAL = 8 + 8 + DIGEST_WIRE_SIZE


def _write_coin_qc(w: _Writer, coin_qc: CoinQC) -> None:
    w.i64(coin_qc.view)
    w.i64(coin_qc.leader)
    w.digest(coin_qc.proof_tag)
    w.pad(COIN_QC_WIRE_SIZE - _COIN_QC_NATURAL)


def _read_coin_qc(r: _Reader) -> CoinQC:
    view = r.i64()
    leader = r.i64()
    proof_tag = r.digest()
    r.skip_zeros(COIN_QC_WIRE_SIZE - _COIN_QC_NATURAL)
    return CoinQC(view=view, leader=leader, proof_tag=proof_tag)


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------
_CERT_QC = 1
_CERT_FQC = 2
_CERT_ENDORSED = 3
_CERT_TC = 4
_CERT_FTC = 5
_CERT_COINQC = 6

#: Reserved bytes filling the certificate header slot for certs whose
#: natural header (one number) is smaller than the modeled 48 bytes — a
#: production TC carries the signers' high-round vector there.
_TC_HEADER_PAD = CERT_HEADER_WIRE_SIZE - 8


def _write_cert(w: _Writer, cert: object) -> None:
    if isinstance(cert, EndorsedFallbackQC):
        w.u8(_CERT_ENDORSED)
        _write_cert(w, cert.fqc)
        _write_cert(w, cert.coin_qc)
    elif isinstance(cert, QC):
        w.u8(_CERT_QC)
        w.digest(cert.block_id)
        w.i64(cert.round)
        w.i64(cert.view)
        _write_tsig(w, cert.signature)
    elif isinstance(cert, FallbackQC):
        w.u8(_CERT_FQC)
        w.digest(cert.block_id)
        w.i64(cert.round)
        w.i64(cert.view)
        w.i64(cert.height)
        w.i64(cert.proposer)
        _write_tsig(w, cert.signature)
    elif isinstance(cert, TimeoutCertificate):
        w.u8(_CERT_TC)
        w.i64(cert.round)
        w.pad(_TC_HEADER_PAD)
        _write_tsig(w, cert.signature)
    elif isinstance(cert, FallbackTC):
        w.u8(_CERT_FTC)
        w.i64(cert.view)
        w.pad(_TC_HEADER_PAD)
        _write_tsig(w, cert.signature)
    elif isinstance(cert, CoinQC):
        w.u8(_CERT_COINQC)
        _write_coin_qc(w, cert)
    else:
        raise EncodeError(f"unencodable certificate type {type(cert).__name__}")


def _read_cert(r: _Reader) -> object:
    tag = r.u8()
    if tag == _CERT_QC:
        return QC(
            block_id=r.digest(), round=r.i64(), view=r.i64(), signature=_read_tsig(r)
        )
    if tag == _CERT_FQC:
        return FallbackQC(
            block_id=r.digest(),
            round=r.i64(),
            view=r.i64(),
            height=r.i64(),
            proposer=r.i64(),
            signature=_read_tsig(r),
        )
    if tag == _CERT_ENDORSED:
        fqc = _read_cert(r)
        coin_qc = _read_cert(r)
        if not isinstance(fqc, FallbackQC) or not isinstance(coin_qc, CoinQC):
            raise DecodeError("endorsed certificate must wrap an f-QC and a coin-QC")
        return EndorsedFallbackQC(fqc=fqc, coin_qc=coin_qc)
    if tag == _CERT_TC:
        round_number = r.i64()
        r.skip_zeros(_TC_HEADER_PAD)
        return TimeoutCertificate(round=round_number, signature=_read_tsig(r))
    if tag == _CERT_FTC:
        view = r.i64()
        r.skip_zeros(_TC_HEADER_PAD)
        return FallbackTC(view=view, signature=_read_tsig(r))
    if tag == _CERT_COINQC:
        return _read_coin_qc(r)
    raise DecodeError(f"unknown certificate tag {tag}")


def _read_cert_of(r: _Reader, *types: type[object]) -> object:
    cert = _read_cert(r)
    if not isinstance(cert, types):
        expected = "/".join(t.__name__ for t in types)
        raise DecodeError(
            f"certificate of type {type(cert).__name__} where {expected} required"
        )
    return cert


# ----------------------------------------------------------------------
# Transactions / batches / blocks
# ----------------------------------------------------------------------
def _write_transaction(w: _Writer, tx: Transaction) -> None:
    w.string(tx.tx_id)
    w.i64(tx.client)
    w.i64(tx.payload_size)
    w.f64(tx.submitted_at)
    payload = tx.payload.encode("utf-8")
    if len(payload) > 0xFFFF:
        raise EncodeError(f"transaction payload too long: {len(payload)} bytes")
    w.u16(len(payload))
    w.buf += payload
    # The wire carries the full modeled payload volume: the simulation's
    # payload string is a small stand-in for a payload_size-byte command
    # body, so the slot is padded out to payload_size bytes.
    w.pad(max(0, tx.payload_size - len(payload)))


def _read_transaction(r: _Reader) -> Transaction:
    tx_id = r.string()
    client = r.i64()
    payload_size = r.i64()
    submitted_at = r.f64()
    length = r.u16()
    raw = r._take(length)
    try:
        payload = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError(f"invalid UTF-8 in payload: {exc}") from exc
    r.skip_zeros(max(0, payload_size - length))
    return Transaction(
        tx_id=tx_id,
        client=client,
        payload=payload,
        payload_size=payload_size,
        submitted_at=submitted_at,
    )


def _write_batch(w: _Writer, batch: Batch) -> None:
    if len(batch.transactions) > 0xFFFF:
        raise EncodeError(f"batch too large: {len(batch.transactions)} transactions")
    w.u16(len(batch.transactions))
    for tx in batch.transactions:
        _write_transaction(w, tx)


def _read_batch(r: _Reader) -> Batch:
    count = r.u16()
    return Batch(transactions=tuple(_read_transaction(r) for _ in range(count)))


_BLOCK_REGULAR = 1
_BLOCK_FALLBACK = 2


def _write_block(w: _Writer, block: object) -> None:
    if isinstance(block, FallbackBlock):
        w.u8(_BLOCK_FALLBACK)
        w.digest(block.id)
        w.i64(block.round)
        w.i64(block.view)
        w.pad(16)  # header slot reserve (author / metadata in production)
        w.i64(block.height)
        w.i64(block.proposer)
        _write_cert(w, block.qc)
        _write_batch(w, block.batch)
    elif isinstance(block, Block):
        w.u8(_BLOCK_REGULAR)
        w.digest(block.id)
        w.i64(block.round)
        w.i64(block.view)
        w.i64(block.author)
        w.pad(8)  # header slot reserve
        if block.qc is None:
            w.u8(0)
        else:
            w.u8(1)
            _write_cert(w, block.qc)
        _write_batch(w, block.batch)
    else:
        raise EncodeError(f"unencodable block type {type(block).__name__}")


def _read_block(r: _Reader) -> object:
    tag = r.u8()
    if tag == _BLOCK_FALLBACK:
        shipped_id = r.digest()
        round_number = r.i64()
        view = r.i64()
        r.skip_zeros(16)
        height = r.i64()
        proposer = r.i64()
        qc = _read_cert_of(r, QC, EndorsedFallbackQC, FallbackQC)
        batch = _read_batch(r)
        block = FallbackBlock(
            qc=qc,
            round=round_number,
            view=view,
            height=height,
            proposer=proposer,
            batch=batch,
        )
    elif tag == _BLOCK_REGULAR:
        shipped_id = r.digest()
        round_number = r.i64()
        view = r.i64()
        author = r.i64()
        r.skip_zeros(8)
        qc = _read_cert_of(r, QC, EndorsedFallbackQC) if r.u8() else None
        batch = _read_batch(r)
        block = Block(
            qc=qc, round=round_number, view=view, batch=batch, author=author
        )
    else:
        raise DecodeError(f"unknown block tag {tag}")
    # Content-hash integrity: the id must match what the fields hash to, so
    # a forged or corrupted block cannot smuggle a mismatched identity.
    if block.id != shipped_id:
        raise DecodeError("block id does not match block contents")
    return block


def _read_block_of(r: _Reader, *types: type[object]) -> object:
    block = _read_block(r)
    if not isinstance(block, types):
        expected = "/".join(t.__name__ for t in types)
        raise DecodeError(
            f"block of type {type(block).__name__} where {expected} required"
        )
    return block


# ----------------------------------------------------------------------
# Message bodies
# ----------------------------------------------------------------------
def _enc_proposal(w: _Writer, m: Proposal) -> None:
    w.pad(SIGNATURE_WIRE_SIZE)  # author-signature slot
    _write_block(w, m.block)


def _dec_proposal(r: _Reader) -> Proposal:
    r.skip_zeros(SIGNATURE_WIRE_SIZE)
    return Proposal(block=_read_block_of(r, Block))


def _enc_vote(w: _Writer, m: Vote) -> None:
    w.digest(m.block_id)
    w.i64(m.round)
    w.i64(m.view)
    _write_share(w, m.share)


def _dec_vote(r: _Reader) -> Vote:
    return Vote(
        block_id=r.digest(), round=r.i64(), view=r.i64(), share=_read_share(r)
    )


def _enc_pacemaker_timeout(w: _Writer, m: PacemakerTimeout) -> None:
    w.pad(SIGNATURE_WIRE_SIZE)
    w.i64(m.round)
    _write_share(w, m.share)
    _write_cert(w, m.qc_high)


def _dec_pacemaker_timeout(r: _Reader) -> PacemakerTimeout:
    r.skip_zeros(SIGNATURE_WIRE_SIZE)
    return PacemakerTimeout(
        round=r.i64(),
        share=_read_share(r),
        qc_high=_read_cert_of(r, QC, EndorsedFallbackQC),
    )


def _enc_pacemaker_tc(w: _Writer, m: PacemakerTCMessage) -> None:
    _write_cert(w, m.tc)
    _write_cert(w, m.qc_high)


def _dec_pacemaker_tc(r: _Reader) -> PacemakerTCMessage:
    return PacemakerTCMessage(
        tc=_read_cert_of(r, TimeoutCertificate),
        qc_high=_read_cert_of(r, QC, EndorsedFallbackQC),
    )


def _enc_fallback_timeout(w: _Writer, m: FallbackTimeout) -> None:
    w.pad(SIGNATURE_WIRE_SIZE)
    w.i64(m.view)
    _write_share(w, m.share)
    _write_cert(w, m.qc_high)


def _dec_fallback_timeout(r: _Reader) -> FallbackTimeout:
    r.skip_zeros(SIGNATURE_WIRE_SIZE)
    return FallbackTimeout(
        view=r.i64(),
        share=_read_share(r),
        qc_high=_read_cert_of(r, QC, EndorsedFallbackQC),
    )


def _enc_fallback_tc(w: _Writer, m: FallbackTCMessage) -> None:
    _write_cert(w, m.ftc)


def _dec_fallback_tc(r: _Reader) -> FallbackTCMessage:
    return FallbackTCMessage(ftc=_read_cert_of(r, FallbackTC))


def _enc_fallback_proposal(w: _Writer, m: FallbackProposal) -> None:
    w.pad(SIGNATURE_WIRE_SIZE)
    _write_block(w, m.fblock)
    if m.ftc is None:
        w.u8(0)
    else:
        w.u8(1)
        _write_cert(w, m.ftc)


def _dec_fallback_proposal(r: _Reader) -> FallbackProposal:
    r.skip_zeros(SIGNATURE_WIRE_SIZE)
    fblock = _read_block_of(r, FallbackBlock)
    ftc = _read_cert_of(r, FallbackTC) if r.u8() else None
    return FallbackProposal(fblock=fblock, ftc=ftc)


def _enc_fallback_vote(w: _Writer, m: FallbackVote) -> None:
    w.digest(m.block_id)
    w.i64(m.round)
    w.i64(m.view)
    w.i64(m.height)
    w.i64(m.proposer)
    _write_share(w, m.share)


def _dec_fallback_vote(r: _Reader) -> FallbackVote:
    return FallbackVote(
        block_id=r.digest(),
        round=r.i64(),
        view=r.i64(),
        height=r.i64(),
        proposer=r.i64(),
        share=_read_share(r),
    )


def _enc_fallback_qc(w: _Writer, m: FallbackQCMessage) -> None:
    w.pad(SIGNATURE_WIRE_SIZE)
    _write_cert(w, m.fqc)


def _dec_fallback_qc(r: _Reader) -> FallbackQCMessage:
    r.skip_zeros(SIGNATURE_WIRE_SIZE)
    return FallbackQCMessage(fqc=_read_cert_of(r, FallbackQC))


def _enc_coin_share(w: _Writer, m: CoinShareMessage) -> None:
    _write_coin_share(w, m.share)


def _dec_coin_share(r: _Reader) -> CoinShareMessage:
    return CoinShareMessage(share=_read_coin_share(r))


def _enc_coin_qc(w: _Writer, m: CoinQCMessage) -> None:
    _write_cert(w, m.coin_qc)


def _dec_coin_qc(r: _Reader) -> CoinQCMessage:
    return CoinQCMessage(coin_qc=_read_cert_of(r, CoinQC))


def _enc_block_request(w: _Writer, m: BlockRequest) -> None:
    w.digest(m.block_id)


def _dec_block_request(r: _Reader) -> BlockRequest:
    return BlockRequest(block_id=r.digest())


def _enc_block_response(w: _Writer, m: BlockResponse) -> None:
    _write_block(w, m.block)


def _dec_block_response(r: _Reader) -> BlockResponse:
    return BlockResponse(block=_read_block(r))


def _enc_chain_request(w: _Writer, m: ChainRequest) -> None:
    w.digest(m.block_id)
    w.u32(m.max_blocks)


def _dec_chain_request(r: _Reader) -> ChainRequest:
    return ChainRequest(block_id=r.digest(), max_blocks=r.u32())


def _enc_chain_response(w: _Writer, m: ChainResponse) -> None:
    if len(m.blocks) > 0xFFFF:
        raise EncodeError(f"chain response too large: {len(m.blocks)} blocks")
    w.u16(len(m.blocks))
    for block in m.blocks:
        _write_block(w, block)


def _dec_chain_response(r: _Reader) -> ChainResponse:
    count = r.u16()
    return ChainResponse(blocks=tuple(_read_block(r) for _ in range(count)))


def _enc_client_request(w: _Writer, m: ClientRequest) -> None:
    _write_transaction(w, m.transaction)


def _dec_client_request(r: _Reader) -> ClientRequest:
    return ClientRequest(transaction=_read_transaction(r))


def _enc_client_reply(w: _Writer, m: ClientReply) -> None:
    w.string(m.tx_id)
    w.i64(m.position)
    w.digest(m.block_id)
    w.i64(m.replica)


def _dec_client_reply(r: _Reader) -> ClientReply:
    return ClientReply(
        tx_id=r.string(), position=r.i64(), block_id=r.digest(), replica=r.i64()
    )


# ----------------------------------------------------------------------
# Type-tag registry
# ----------------------------------------------------------------------
_MESSAGE_TAGS: dict[type[object], int] = {}
_BODY_ENCODERS: dict[type[object], Callable[[_Writer, object], None]] = {}
_BODY_DECODERS: dict[int, Callable[[_Reader], object]] = {}


def register_message(
    message_type: type[object],
    tag: int,
    encode_body: Callable[[_Writer, object], None],
    decode_body: Callable[[_Reader], object],
    _core: bool = False,
) -> None:
    """Register a message type under a wire tag.

    Core protocol messages own tags 1-127 (assigned below, never at call
    sites); external callers registering extension messages must use tags
    in [128, 255].  Tags and types are both single-assignment — re-binding
    either raises, because silently renumbering a live wire format is how
    incompatible peers happen.
    """
    if not 1 <= tag <= 0xFF:
        raise ValueError(f"tag {tag} out of range 1..255")
    if not _core and tag < EXTENSION_TAG_BASE:
        raise ValueError(
            f"tags below {EXTENSION_TAG_BASE} are reserved for core messages"
        )
    if tag in _BODY_DECODERS:
        raise ValueError(f"tag {tag} already registered")
    if message_type in _MESSAGE_TAGS:
        raise ValueError(f"{message_type.__name__} already registered")
    _MESSAGE_TAGS[message_type] = tag
    _BODY_ENCODERS[message_type] = encode_body
    _BODY_DECODERS[tag] = decode_body


def unregister_message(message_type: type[object]) -> None:
    """Remove an extension registration (tests only; core tags are fixed)."""
    tag = _MESSAGE_TAGS.pop(message_type, None)
    if tag is None:
        return
    if tag < EXTENSION_TAG_BASE:
        _MESSAGE_TAGS[message_type] = tag
        raise ValueError("core message registrations cannot be removed")
    _BODY_ENCODERS.pop(message_type, None)
    _BODY_DECODERS.pop(tag, None)


def has_codec_entry(message_type: type[object]) -> bool:
    """True if the codec can encode/decode this message type."""
    return message_type in _MESSAGE_TAGS


_CORE_MESSAGES = (
    (Proposal, 1, _enc_proposal, _dec_proposal),
    (Vote, 2, _enc_vote, _dec_vote),
    (PacemakerTimeout, 3, _enc_pacemaker_timeout, _dec_pacemaker_timeout),
    (PacemakerTCMessage, 4, _enc_pacemaker_tc, _dec_pacemaker_tc),
    (FallbackTimeout, 5, _enc_fallback_timeout, _dec_fallback_timeout),
    (FallbackTCMessage, 6, _enc_fallback_tc, _dec_fallback_tc),
    (FallbackProposal, 7, _enc_fallback_proposal, _dec_fallback_proposal),
    (FallbackVote, 8, _enc_fallback_vote, _dec_fallback_vote),
    (FallbackQCMessage, 9, _enc_fallback_qc, _dec_fallback_qc),
    (CoinShareMessage, 10, _enc_coin_share, _dec_coin_share),
    (CoinQCMessage, 11, _enc_coin_qc, _dec_coin_qc),
    (BlockRequest, 12, _enc_block_request, _dec_block_request),
    (BlockResponse, 13, _enc_block_response, _dec_block_response),
    (ChainRequest, 14, _enc_chain_request, _dec_chain_request),
    (ChainResponse, 15, _enc_chain_response, _dec_chain_response),
    (ClientRequest, 16, _enc_client_request, _dec_client_request),
    (ClientReply, 17, _enc_client_reply, _dec_client_reply),
)

for _cls, _tag, _enc, _dec in _CORE_MESSAGES:
    register_message(_cls, _tag, _enc, _dec, _core=True)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def encode_message(sender: int, message: object) -> bytes:
    """Encode ``message`` from ``sender`` into canonical wire bytes."""
    encoder = _BODY_ENCODERS.get(type(message))
    if encoder is None:
        raise EncodeError(f"no codec entry for {type(message).__name__}")
    w = _Writer()
    w.u8(WIRE_VERSION)
    w.u8(_MESSAGE_TAGS[type(message)])
    w.i16(sender)
    w.pad(4)   # reserved
    w.pad(16)  # auth slot (channel MAC in a real deployment)
    encoder(w, message)
    return bytes(w.buf)


def decode_message(data: bytes) -> tuple[int, object]:
    """Decode wire bytes into ``(sender, message)``.

    Raises :class:`DecodeError` on any malformation: unsupported version,
    unknown type tag, truncation, trailing bytes, nonzero reserved padding,
    invalid nested structures, or a block id that does not match its
    contents.
    """
    r = _Reader(data)
    try:
        version = r.u8()
        if version != WIRE_VERSION:
            raise DecodeError(f"unsupported wire version {version}")
        tag = r.u8()
        decoder = _BODY_DECODERS.get(tag)
        if decoder is None:
            raise DecodeError(f"unknown message type tag {tag}")
        sender = r.i16()
        r.skip_zeros(4)
        r.skip_zeros(16)
        message = decoder(r)
        r.expect_end()
    except DecodeError:
        raise
    except (ValueError, OverflowError, struct.error) as exc:
        # Constructor validation (e.g. endorsement view mismatch, fallback
        # height < 1) rejecting decoded content is a wire-format error.
        raise DecodeError(str(exc)) from exc
    return sender, message


def encoded_size(message: object, sender: int = 0) -> int:
    """Real encoded byte count of ``message`` (excluding stream framing)."""
    return len(encode_message(sender, message))


def try_encoded_size(message: object, sender: int = 0) -> Optional[int]:
    """``encoded_size`` if the codec knows this type, else ``None``."""
    if type(message) not in _MESSAGE_TAGS:
        return None
    try:
        return encoded_size(message, sender)
    except EncodeError:
        return None
