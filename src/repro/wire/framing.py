"""Length-prefixed framing for codec messages on stream transports.

A frame is a 4-byte big-endian unsigned length followed by that many
payload bytes (one encoded message).  The decoder is incremental — feed it
arbitrary chunk boundaries and it yields complete payloads — and hostile-
input safe: a length of zero or above :data:`MAX_FRAME_SIZE` raises
:class:`FrameError` immediately, before any allocation, so a garbage
4-byte header cannot make the receiver buffer gigabytes.  Framing errors
are not recoverable (the stream position is lost); transports must drop
the connection, unlike payload-level :class:`~repro.wire.codec.DecodeError`
which poisons only the one message.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Iterator

#: Bytes of length prefix before each payload.
FRAME_HEADER_SIZE = 4

#: Hard ceiling on one frame's payload (16 MiB); beyond this is garbage.
MAX_FRAME_SIZE = 1 << 24

_LEN = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed frame header; the stream is unrecoverable past it."""


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length prefix."""
    if len(payload) == 0:
        raise FrameError("empty frame payload")
    if len(payload) > MAX_FRAME_SIZE:
        raise FrameError(f"frame payload too large: {len(payload)} bytes")
    return _LEN.pack(len(payload)) + payload


def _check_length(length: int) -> int:
    if length == 0:
        raise FrameError("zero-length frame")
    if length > MAX_FRAME_SIZE:
        raise FrameError(f"frame length {length} exceeds maximum {MAX_FRAME_SIZE}")
    return length


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Call :meth:`feed` with each received chunk and iterate the returned
    payloads.  State persists across calls, so frames may straddle chunk
    boundaries arbitrarily.  After a :class:`FrameError` the decoder state
    is undefined; drop the connection and start fresh.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> Iterator[bytes]:
        self._buffer += chunk
        while True:
            if len(self._buffer) < FRAME_HEADER_SIZE:
                return
            length = _check_length(_LEN.unpack_from(self._buffer)[0])
            end = FRAME_HEADER_SIZE + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[FRAME_HEADER_SIZE:end])
            del self._buffer[:end]
            yield payload


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one complete frame from an asyncio stream.

    Raises :class:`asyncio.IncompleteReadError` on clean EOF between
    frames (and mid-frame), and :class:`FrameError` on a bad length.
    """
    header = await reader.readexactly(FRAME_HEADER_SIZE)
    length = _check_length(_LEN.unpack(header)[0])
    return await reader.readexactly(length)


def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Queue one frame on an asyncio stream writer (caller drains)."""
    writer.write(encode_frame(payload))
