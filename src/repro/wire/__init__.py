"""Wire subsystem: deterministic binary codec + length-prefixed framing.

``repro.wire.codec`` turns every protocol message (and the certificates,
blocks and transactions inside them) into canonical versioned bytes and
back; ``repro.wire.framing`` delimits those byte strings on a stream
transport.  The live runtime (`repro.runtime.live`) ships codec output over
real TCP sockets, and `encoded_size` supersedes the hand-maintained
``wire_size()`` estimates wherever real byte counts are available.
"""

from repro.wire.codec import (
    CodecError,
    DecodeError,
    EncodeError,
    WIRE_VERSION,
    decode_message,
    encode_message,
    encoded_size,
    has_codec_entry,
    try_encoded_size,
)
from repro.wire.framing import (
    FRAME_HEADER_SIZE,
    MAX_FRAME_SIZE,
    FrameDecoder,
    FrameError,
    encode_frame,
)

__all__ = [
    "CodecError",
    "DecodeError",
    "EncodeError",
    "WIRE_VERSION",
    "decode_message",
    "encode_message",
    "encoded_size",
    "has_codec_entry",
    "try_encoded_size",
    "FRAME_HEADER_SIZE",
    "MAX_FRAME_SIZE",
    "FrameDecoder",
    "FrameError",
    "encode_frame",
]
