"""The simulation scheduler: clock, timers, seeded randomness, run loop.

The run loop drains a :class:`~repro.sim.events.EventQueue` — a
``(time, sequence, event)`` tuple heap with lazy cancellation (cancelled
entries stay on the heap and are skipped on pop), an O(1) live-event count,
and insertion-order tie-breaking so same-instant events fire
deterministically.  :class:`Timer` is a thin cancellation handle over one
heap event; it implements the :class:`repro.sim.timers.TimerHandle`
interface, and :class:`Scheduler` implements
:class:`repro.sim.timers.TimerScheduler` — the same interface the live
runtime's wall-clock scheduler provides, which is what lets unchanged
replica code run against either clock.

The scheduler owns the single source of randomness for a run.  Network delay
models, workload generators and the common coin all draw from
:attr:`Scheduler.rng` (or children derived from it), so a run is a pure
function of its seed.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Timer:
    """Handle for a scheduled timer (the sim's ``TimerHandle``).

    Wraps one heap :class:`~repro.sim.events.Event`.  Cancellation is lazy:
    it only flags the event (the queue skips flagged entries when they
    surface), so cancel is O(1) and never reshuffles the heap.  ``active``
    reads the event's ``cancelled``/``fired`` flags — it goes False both on
    cancellation and after the timer fires.
    """

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def deadline(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        """True only while the timer can still fire (not cancelled, not fired)."""
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        self._event.cancel()


class Scheduler:
    """Deterministic discrete-event scheduler.

    Typical use::

        scheduler = Scheduler(seed=7)
        scheduler.call_at(1.0, lambda: print("hello"))
        scheduler.run(until=10.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def call_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        return self._queue.push(time, action, label)

    def call_after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, action, label)

    def set_timer(self, delay: float, action: Callable[[], None], label: str = "timer") -> Timer:
        """Schedule a cancellable timer ``delay`` from now."""
        return Timer(self.call_after(delay, action, label))

    def child_rng(self, *salt: object) -> random.Random:
        """Derive an independent, deterministic RNG from the run seed.

        Components (network, workload, coin) should use child RNGs so that
        adding randomness consumption to one component does not perturb the
        draws seen by another.
        """
        return random.Random((self.seed, tuple(salt)).__repr__())

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that the run loop stop before the next event."""
        self._stop_requested = True

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        check_every: int = 64,
    ) -> float:
        """Run events until a stop condition holds.

        Args:
            until: stop once simulated time would exceed this bound.
            max_events: stop after this many events (guards runaway runs).
            stop_when: predicate checked every ``check_every`` events; the
                run stops as soon as it returns True.
            check_every: how often (in events) to evaluate ``stop_when``.

        Returns:
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("scheduler run loop is not reentrant")
        self._running = True
        self._stop_requested = False
        processed = 0
        try:
            while not self._stop_requested:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                processed += 1
                if stop_when is not None and processed % check_every == 0 and stop_when():
                    break
        finally:
            self._running = False
        return self._now

    def drain(self, limit: int = 1_000_000) -> int:
        """Run until the queue is empty (or ``limit`` events); return count."""
        count = 0
        while count < limit and self.step():
            count += 1
        return count
