"""Deterministic discrete-event simulation substrate.

Every protocol in this repository runs on top of this engine.  The engine is
fully deterministic: given the same seed and the same set of processes, two
runs produce identical event orders, which makes adversarial schedules and
failures reproducible down to the message.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler, SimulationError, Timer

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "Scheduler",
    "SimulationError",
    "Timer",
]
