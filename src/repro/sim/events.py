"""Event primitives for the discrete-event engine.

An :class:`Event` is a callback scheduled at a simulated time.  Events are
totally ordered by ``(time, sequence)`` where the sequence number is the
global insertion order; two events scheduled for the same instant therefore
fire in the order they were scheduled, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulated time at which the event fires.
        sequence: global tie-breaker assigned by the queue.
        action: zero-argument callable run when the event fires.
        label: human-readable tag used in traces and error messages.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.action()


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = Event(time=time, sequence=self._sequence, action=action, label=label)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()


def describe_event(event: Event) -> dict[str, Any]:
    """Return a JSON-friendly description of ``event`` (used by traces)."""
    return {"time": event.time, "seq": event.sequence, "label": event.label}
