"""Event primitives for the discrete-event engine.

An :class:`Event` is a callback scheduled at a simulated time.  Events are
totally ordered by ``(time, sequence)`` where the sequence number is the
global insertion order; two events scheduled for the same instant therefore
fire in the order they were scheduled, which keeps runs deterministic.

The queue stores ``(time, sequence, event)`` tuples so heap comparisons run
on native tuples instead of calling back into Python-level ``__lt__``, and
it maintains a live-event counter so ``len()`` is O(1) even with many
cancelled-but-unpopped entries on the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes:
        time: simulated time at which the event fires.
        sequence: global tie-breaker assigned by the queue.
        action: zero-argument callable run when the event fires.
        label: human-readable tag used in traces and error messages.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
        fired: set by :meth:`fire`; a fired event is spent either way.
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled", "fired", "_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        action: Callable[[], None],
        label: str = "",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = False
        self.fired = False
        #: Owning queue while the event is still on the heap (for the live
        #: counter); detached on pop/clear so late cancels don't double-count.
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                self._queue = None

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        self.fired = True
        if not self.cancelled:
            self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, sequence={self.sequence!r}, "
            f"label={self.label!r}, cancelled={self.cancelled!r}, "
            f"fired={self.fired!r})"
        )


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_sequence", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = Event(time, self._sequence, action, label)
        event._queue = self
        heapq.heappush(self._heap, (time, self._sequence, event))
        self._sequence += 1
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without popping it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
            else:
                return entry[0]
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[2]._queue = None
        self._heap.clear()
        self._live = 0


def describe_event(event: Event) -> dict[str, Any]:
    """Return a JSON-friendly description of ``event`` (used by traces)."""
    return {"time": event.time, "seq": event.sequence, "label": event.label}
