"""Actor-style process base class.

A :class:`Process` is anything that can receive messages from the network and
set timers on the scheduler.  Replicas, clients and fault wrappers are all
processes.  Handlers run atomically: both runtimes process one delivery at a
time (the discrete-event engine by construction, the live runtime because
asyncio callbacks are serialized on one loop), so handlers never need locks.

Processes depend only on the :class:`repro.sim.timers.TimerScheduler`
interface — the simulated :class:`~repro.sim.scheduler.Scheduler` and the
live runtime's wall-clock scheduler are interchangeable here.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.timers import TimerHandle, TimerScheduler


class Process:
    """Base class for protocol actors (simulated or live).

    Subclasses override :meth:`on_message` and may use :meth:`set_timer` /
    :meth:`cancel_timer` with named slots (a fresh timer for a name replaces
    and cancels the previous one, mirroring the "stops all timers" wording in
    the paper's pseudocode).
    """

    def __init__(self, process_id: int, scheduler: TimerScheduler) -> None:
        self.process_id = process_id
        self.scheduler = scheduler
        self._timers: dict[str, TimerHandle] = {}
        self.crashed = False

    # ------------------------------------------------------------------
    # Messaging (network calls deliver here)
    # ------------------------------------------------------------------
    def deliver(self, sender: int, message: Any) -> None:
        """Entry point used by the network; ignores input once crashed."""
        if self.crashed:
            return
        self.on_message(sender, message)

    def on_message(self, sender: int, message: Any) -> None:
        """Handle an incoming message.  Subclasses override."""
        raise NotImplementedError

    def on_start(self) -> None:
        """Hook invoked once when the cluster starts the process."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    def set_timer(self, name: str, delay: float) -> None:
        """Arm (or re-arm) the named timer ``delay`` from now."""
        self.cancel_timer(name)
        self._timers[name] = self.scheduler.set_timer(
            delay,
            lambda: self._fire_timer(name),
            label=f"p{self.process_id}:{name}",
        )

    def cancel_timer(self, name: str) -> None:
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()

    def cancel_all_timers(self) -> None:
        for name in list(self._timers):
            self.cancel_timer(name)

    def timer_active(self, name: str) -> bool:
        timer = self._timers.get(name)
        return timer is not None and timer.active

    def _fire_timer(self, name: str) -> None:
        self._timers.pop(name, None)
        if not self.crashed:
            self.on_timer(name)

    def on_timer(self, name: str) -> None:
        """Handle a timer expiry.  Subclasses override as needed."""

    # ------------------------------------------------------------------
    # Failure control (used by fault injection)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Silence the process permanently: no input, no timers."""
        self.crashed = True
        self.cancel_all_timers()


class NullProcess(Process):
    """A process that ignores everything (placeholder for crashed slots)."""

    def on_message(self, sender: int, message: Any) -> None:  # noqa: D102
        return None


def process_name(process: Optional[Process]) -> str:
    """Readable name for logs: ``replica-3`` style."""
    if process is None:
        return "<none>"
    return f"{type(process).__name__.lower()}-{process.process_id}"
