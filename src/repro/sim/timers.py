"""The timer interface shared by the simulated and live runtimes.

:class:`~repro.sim.process.Process` (and therefore every replica) talks to
its scheduler exclusively through this narrow surface: a monotonically
non-decreasing ``now`` and ``set_timer`` returning a cancellable handle.
Two implementations exist:

- :class:`repro.sim.scheduler.Scheduler` — the deterministic discrete-event
  engine (a ``(time, sequence, event)`` tuple heap with lazy cancellation);
  ``now`` is simulated time and timers are heap events.
- :class:`repro.runtime.live.WallClockScheduler` — the live runtime's
  asyncio-backed scheduler; ``now`` is wall-clock seconds since cluster
  start and timers are ``loop.call_later`` handles.

Replica logic is identical under both: the protocol never observes which
clock is driving it.  Keep this interface minimal — anything added here
must be implementable against a real clock, where "peek at the next event"
or "run until quiescent" have no meaning.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable


@runtime_checkable
class TimerHandle(Protocol):
    """Handle for one armed timer.

    ``active`` is True only while the timer can still fire: it becomes
    False after :meth:`cancel` *and* after the timer fires (a fired timer
    is spent either way).
    """

    @property
    def deadline(self) -> float:
        """Absolute scheduler time at which the timer fires."""

    @property
    def active(self) -> bool:
        """True while the timer is pending (not cancelled, not fired)."""

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent; safe after firing."""


@runtime_checkable
class TimerScheduler(Protocol):
    """What a process needs from its runtime: a clock and cancellable timers."""

    @property
    def now(self) -> float:
        """Current scheduler time (simulated or wall-clock seconds)."""

    def set_timer(
        self, delay: float, action: Callable[[], None], label: str = "timer"
    ) -> TimerHandle:
        """Arm ``action`` to run ``delay`` from now; returns its handle."""
