"""Saturation search: max sustainable throughput and the latency knee.

The classic serving-systems question — "how much load can this cluster
take before it falls over?" — is answered here the standard way:

1. **measure one offered rate**: drive a cluster open-loop with Poisson
   arrivals at a fixed rate through admission control for a fixed window,
   then let admitted work drain; the run is *sustainable* when nearly all
   offered requests actually commit (goodput ratio >= 0.95 — under
   overload the bounded mempools shed offers, which is exactly the signal);
2. **bracket then bisect**: double the offered rate until a run goes
   unsustainable, then binary-search the interval; the highest sustainable
   probe is the **knee**, and every probe becomes a point on the recorded
   rate/goodput/latency curve;
3. **adaptive-vs-fixed**: re-measure the knee rate under the adaptive batch
   controller and under a sweep of fixed batch sizes, so the recorded
   comparison shows where the controller lands against the best static
   tuning.

Everything here runs on the simulator's virtual clock and is fully
deterministic in ``(scenario, seed)``; the live wall-clock scenario is in
:meth:`repro.runtime.live.LiveCluster.run_open_loop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.traffic.admission import AdmissionController
from repro.traffic.envelope import TrafficEnvelope
from repro.traffic.loadgen import OpenLoopGenerator, PoissonArrivals
from repro.traffic.slo import LatencySummary, RequestTracker, summarize

#: A probe is sustainable when at least this fraction of offers commit.
SUSTAINABLE_GOODPUT_RATIO = 0.95


def default_scenarios() -> "dict[str, SaturationScenario]":
    """The canonical simulated saturation scenarios (BENCH_traffic.json)."""
    return {
        scenario.name: scenario
        for scenario in (
            SaturationScenario(name="steady-n4", n=4),
            SaturationScenario(name="steady-n16", n=16),
            SaturationScenario(name="steady-n64", n=64),
            SaturationScenario(name="lossy20-n4", n=4, network="lossy"),
            SaturationScenario(name="fallback-n4", n=4, network="attack"),
        )
    }


@dataclass(frozen=True)
class SaturationScenario:
    """One named operating condition to find the knee of."""

    name: str
    n: int = 4
    protocol: str = "fallback-3chain"
    #: "sync" | "lossy" (iid drop behind reliable channels) | "attack"
    #: (leader-targeting asynchronous adversary => fallback-heavy).
    network: str = "sync"
    round_timeout: float = 5.0
    adaptive: bool = True
    batch_size: int = 10
    max_batch: int = 160
    #: Per-replica mempool bound while probing (10x the largest batch, so
    #: overload rejects within a few rounds instead of queueing forever).
    mempool_capacity: int = 1600
    loss_rate: float = 0.2
    attack_delay: float = 60.0

    def config(self):
        from repro.protocols.presets import preset

        return preset(self.protocol).config(
            self.n,
            round_timeout=self.round_timeout,
            batch_size=self.batch_size,
            adaptive_batching=self.adaptive,
            adaptive_max_batch=self.max_batch,
        )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "n": self.n,
            "protocol": self.protocol,
            "network": self.network,
            "adaptive": self.adaptive,
            "batch_size": self.batch_size,
            "max_batch": self.max_batch,
            "mempool_capacity": self.mempool_capacity,
        }


@dataclass(frozen=True)
class RateMeasurement:
    """One open-loop probe at one offered rate."""

    offered_rate: float
    duration: float
    offered: int
    admitted: int
    rejected: int
    committed: int
    goodput: float  #: committed transactions per second of offered window
    goodput_ratio: float  #: committed / offered
    latency: LatencySummary  #: submit -> commit
    fallbacks: int

    @property
    def sustainable(self) -> bool:
        return self.goodput_ratio >= SUSTAINABLE_GOODPUT_RATIO

    def to_json(self) -> dict:
        return {
            "offered_rate": self.offered_rate,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "committed": self.committed,
            "goodput": self.goodput,
            "goodput_ratio": self.goodput_ratio,
            "sustainable": self.sustainable,
            "latency": self.latency.to_json(),
            "fallbacks": self.fallbacks,
        }


@dataclass(frozen=True)
class SaturationResult:
    """The knee plus the full probe curve for one scenario."""

    scenario: SaturationScenario
    knee_rate: float
    knee: Optional[RateMeasurement]
    curve: list[RateMeasurement] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario.to_json(),
            "max_sustainable_rate": self.knee_rate,
            "knee": self.knee.to_json() if self.knee is not None else None,
            "curve": [point.to_json() for point in self.curve],
        }


# ----------------------------------------------------------------------
# One probe
# ----------------------------------------------------------------------
def measure_rate(
    scenario: SaturationScenario,
    rate: float,
    duration: float = 120.0,
    drain: float = 60.0,
    seed: int = 0,
) -> RateMeasurement:
    """Run one simulated open-loop probe at ``rate`` offers/sec."""
    # Imports here keep `repro.traffic` importable without the simulator
    # stack (live tooling pulls in slo/envelope only).
    from repro.experiments.scenarios import leader_attack_factory
    from repro.net.loss import IIDLoss
    from repro.runtime.cluster import ClusterBuilder

    builder = ClusterBuilder(config=scenario.config(), seed=seed).with_preload(0)
    if scenario.network == "lossy":
        builder.with_loss_model(IIDLoss(drop=scenario.loss_rate))
    elif scenario.network == "attack":
        builder.with_delay_model_factory(
            leader_attack_factory(scenario.attack_delay)
        )
    elif scenario.network != "sync":
        raise ValueError(f"unknown network kind: {scenario.network!r}")
    cluster = builder.build()

    for mempool in cluster.mempools:
        mempool.capacity = scenario.mempool_capacity
    envelope = TrafficEnvelope()
    tracker = RequestTracker()
    admission = AdmissionController(
        cluster.mempools, envelope=envelope, tracker=tracker
    )
    cluster.metrics.attach_request_tracker(tracker)
    cluster.metrics.attach_admission(admission)

    total_offers = max(1, int(rate * duration))
    generator = OpenLoopGenerator(
        PoissonArrivals(rate, seed=seed),
        admission.offer,
        max_count=total_offers,
    )
    cluster.start()
    generator.start(cluster.scheduler)

    def drained() -> bool:
        return (
            admission.offered >= total_offers
            and tracker.committed_count() >= admission.admitted
        )

    cluster.run(until=duration + drain, stop_when=drained)

    committed = tracker.committed_count()
    return RateMeasurement(
        offered_rate=rate,
        duration=duration,
        offered=admission.offered,
        admitted=admission.admitted,
        rejected=admission.rejected,
        committed=committed,
        goodput=committed / duration,
        goodput_ratio=committed / max(1, admission.offered),
        latency=summarize(tracker.commit_latencies()),
        fallbacks=cluster.metrics.fallback_count(),
    )


# ----------------------------------------------------------------------
# Knee search
# ----------------------------------------------------------------------
def find_knee(
    scenario: SaturationScenario,
    duration: float = 120.0,
    drain: float = 60.0,
    seed: int = 0,
    start_rate: float = 1.0,
    max_rate: float = 1024.0,
    bisect_steps: int = 4,
) -> SaturationResult:
    """Bracket (geometric doubling) then bisect the max sustainable rate."""
    curve: list[RateMeasurement] = []

    def probe(rate: float) -> RateMeasurement:
        measurement = measure_rate(
            scenario, rate, duration=duration, drain=drain, seed=seed
        )
        curve.append(measurement)
        return measurement

    low_rate, low = 0.0, None
    rate = start_rate
    while rate <= max_rate:
        measurement = probe(rate)
        if not measurement.sustainable:
            break
        low_rate, low = rate, measurement
        rate *= 2.0
    else:
        # Sustainable all the way to the cap: the knee is off the charts.
        return SaturationResult(
            scenario=scenario, knee_rate=low_rate, knee=low,
            curve=sorted(curve, key=lambda m: m.offered_rate),
        )
    high_rate = rate
    for _ in range(bisect_steps):
        mid_rate = (low_rate + high_rate) / 2.0
        measurement = probe(mid_rate)
        if measurement.sustainable:
            low_rate, low = mid_rate, measurement
        else:
            high_rate = mid_rate
    return SaturationResult(
        scenario=scenario, knee_rate=low_rate, knee=low,
        curve=sorted(curve, key=lambda m: m.offered_rate),
    )


# ----------------------------------------------------------------------
# Adaptive vs fixed batching at the knee
# ----------------------------------------------------------------------
def compare_batching(
    scenario: SaturationScenario,
    rate: float,
    fixed_sizes: tuple[int, ...] = (1, 10, 40, 160),
    duration: float = 120.0,
    drain: float = 60.0,
    seed: int = 0,
) -> dict:
    """Measure the knee rate under adaptive and each fixed batch size.

    Returns a JSON-ready record with one entry per mode plus a verdict on
    whether the controller matched the best fixed setting (goodput first,
    p50 as the tiebreaker).
    """
    adaptive = measure_rate(
        replace(scenario, adaptive=True, name=f"{scenario.name}-adaptive"),
        rate, duration=duration, drain=drain, seed=seed,
    )
    fixed: dict[int, RateMeasurement] = {}
    for size in fixed_sizes:
        fixed[size] = measure_rate(
            replace(
                scenario,
                adaptive=False,
                batch_size=size,
                name=f"{scenario.name}-fixed{size}",
            ),
            rate, duration=duration, drain=drain, seed=seed,
        )
    best_size, best = max(
        fixed.items(), key=lambda item: (item[1].committed, -(item[1].latency.p50 or 0))
    )
    adaptive_matches_best = adaptive.committed >= best.committed * 0.95
    return {
        "rate": rate,
        "adaptive": adaptive.to_json(),
        "fixed": {str(size): m.to_json() for size, m in fixed.items()},
        "best_fixed_size": best_size,
        "adaptive_matches_best_fixed": adaptive_matches_best,
    }
