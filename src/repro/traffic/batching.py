"""Adaptive proposal batching: a leader-side batch-size control loop.

A fixed ``ProtocolConfig.batch_size`` is tuned for one operating point: too
small and a loaded cluster burns rounds shipping slivers of the backlog;
too large and light traffic pays worst-case block validation for near-empty
batches.  :class:`AdaptiveBatchController` closes the loop the way serving
systems tune replica counts: each time a leader is about to propose it
calls :meth:`tune` with the current mempool depth, and the controller picks
a batch size within ``[min_batch, max_batch]`` from two signals:

- **backlog**: drain the observed mempool depth within ``drain_rounds``
  proposals, and
- **arrival envelope**: keep up with the offered rate (envelope rate x the
  EWMA inter-proposal interval), so the size holds once the backlog is
  gone instead of collapsing and re-growing.

A hysteresis band suppresses oscillation: the current size only moves when
the target leaves ``±hysteresis`` of it, and then only part of the way
(geometric approach), so one bursty round cannot whipsaw block sizes.

The controller is consulted *only* when ``ProtocolConfig.adaptive_batching``
is on; the default path never constructs one, which keeps recorded
benchmark fingerprints byte-identical.
"""

from __future__ import annotations

from typing import Optional

from repro.traffic.envelope import ArrivalEnvelope

#: EWMA weight for the inter-proposal interval estimate.
_INTERVAL_ALPHA = 0.3


class AdaptiveBatchController:
    """Pick a proposal batch size from mempool depth + arrival envelope."""

    __slots__ = (
        "min_batch",
        "max_batch",
        "drain_rounds",
        "hysteresis",
        "envelope",
        "current",
        "tunes",
        "adjustments",
        "_last_tune_at",
        "_interval_ewma",
    )

    def __init__(
        self,
        min_batch: int = 1,
        max_batch: int = 160,
        start: Optional[int] = None,
        drain_rounds: int = 2,
        hysteresis: float = 0.25,
        envelope: Optional[ArrivalEnvelope] = None,
    ) -> None:
        if min_batch < 1:
            raise ValueError("min_batch must be >= 1")
        if max_batch < min_batch:
            raise ValueError("max_batch must be >= min_batch")
        if drain_rounds < 1:
            raise ValueError("drain_rounds must be >= 1")
        if not 0.0 <= hysteresis < 1.0:
            raise ValueError("hysteresis must be in [0, 1)")
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.drain_rounds = drain_rounds
        self.hysteresis = hysteresis
        self.envelope = envelope
        self.current = self._clamp(start if start is not None else min_batch)
        #: Control-loop observability: how often tune ran / moved the size.
        self.tunes = 0
        self.adjustments = 0
        self._last_tune_at: Optional[float] = None
        self._interval_ewma: Optional[float] = None

    def _clamp(self, size: int) -> int:
        return max(self.min_batch, min(self.max_batch, size))

    def _note_interval(self, now: float) -> None:
        last = self._last_tune_at
        self._last_tune_at = now
        if last is None:
            return
        interval = now - last
        if interval <= 0.0:
            return
        ewma = self._interval_ewma
        self._interval_ewma = (
            interval
            if ewma is None
            else (1.0 - _INTERVAL_ALPHA) * ewma + _INTERVAL_ALPHA * interval
        )

    def target(self, mempool_depth: int, now: float) -> int:
        """The raw (pre-hysteresis) batch size for the current signals."""
        backlog_target = -(-mempool_depth // self.drain_rounds)  # ceil div
        rate_target = 0
        if self.envelope is not None and self._interval_ewma is not None:
            rate_target = int(self.envelope.envelope_rate(now) * self._interval_ewma)
        return self._clamp(max(backlog_target, rate_target))

    def tune(self, mempool_depth: int, now: float) -> int:
        """One control-loop step; returns the batch size to propose with."""
        self.tunes += 1
        self._note_interval(now)
        target = self.target(mempool_depth, now)
        current = self.current
        band = self.hysteresis * current
        if abs(target - current) <= band:
            return current
        # Geometric approach: halfway toward the target per step, always
        # moving at least one transaction so small gaps still converge.
        step = (target - current) // 2
        if step == 0:
            step = 1 if target > current else -1
        self.current = self._clamp(current + step)
        if self.current != current:
            self.adjustments += 1
        return self.current

    def counters(self) -> dict[str, int]:
        return {
            "tunes": self.tunes,
            "adjustments": self.adjustments,
            "current": self.current,
        }
