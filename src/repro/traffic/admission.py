"""Admission control: overload degrades by rejecting, not by growing.

Without a bound, an overloaded cluster fails the slow way: mempools grow
without limit, every batch drains an ever-staler backlog, and latency
climbs until memory runs out.  Production serving stacks fail the other
way — a bounded queue plus an explicit reject path — so overload shows up
as a counted, attributable signal while the requests that *are* admitted
still commit at sane latency.

:class:`AdmissionController` fronts a set of (capacity-bounded) mempools:

- :meth:`offer` submits one transaction to every mempool, but only when at
  least one mempool is below its own capacity (``Mempool.submit`` enforces
  the per-pool bound either way).  Rejections are counted cluster-wide and
  per client source.
- an optional :class:`~repro.traffic.envelope.TrafficEnvelope` observes
  every offered transaction, so the arrival-rate figures cover rejected
  traffic too (that is the point: the envelope must see the offered load,
  not the admitted load).
- an optional :class:`~repro.traffic.slo.RequestTracker` gets
  ``note_submit`` for admitted transactions only; rejected requests never
  enter the latency population.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.traffic.envelope import TrafficEnvelope

if TYPE_CHECKING:
    from repro.mempool.mempool import Mempool
    from repro.traffic.slo import RequestTracker
    from repro.types.transactions import Transaction


class AdmissionController:
    """Bounded-queue admission in front of a cluster's mempools."""

    __slots__ = (
        "mempools",
        "envelope",
        "tracker",
        "offered",
        "admitted",
        "rejected",
        "rejected_by_source",
    )

    def __init__(
        self,
        mempools: Sequence["Mempool"],
        envelope: Optional[TrafficEnvelope] = None,
        tracker: Optional["RequestTracker"] = None,
    ) -> None:
        if not mempools:
            raise ValueError("admission needs at least one mempool")
        self.mempools = list(mempools)
        self.envelope = envelope
        self.tracker = tracker
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.rejected_by_source: dict[int, int] = {}

    def offer(self, transaction: "Transaction", now: Optional[float] = None) -> bool:
        """Submit to every mempool; False when the cluster sheds the request.

        ``now`` defaults to the transaction's own ``submitted_at`` (the two
        agree in simulation; live callers pass their wall clock).
        """
        at = now if now is not None else transaction.submitted_at
        self.offered += 1
        if self.envelope is not None:
            self.envelope.observe(transaction.client, at)
        accepted = False
        for mempool in self.mempools:
            if mempool.submit(transaction):
                accepted = True
        if accepted:
            self.admitted += 1
            if self.tracker is not None:
                self.tracker.note_submit(transaction.tx_id, at)
            return True
        self.rejected += 1
        source = transaction.client
        self.rejected_by_source[source] = self.rejected_by_source.get(source, 0) + 1
        return False

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Deepest mempool — the cluster's effective backlog."""
        return max(len(mempool) for mempool in self.mempools)

    def reject_rate(self) -> float:
        """Fraction of offered requests shed so far."""
        if self.offered == 0:
            return 0.0
        return self.rejected / self.offered

    def counters(self) -> dict:
        mempool_rejects = sum(mempool.rejected_count for mempool in self.mempools)
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "reject_rate": self.reject_rate(),
            "mempool_rejects": mempool_rejects,
            "rejected_by_source": dict(sorted(self.rejected_by_source.items())),
        }
