"""SLO metrics: percentile math and per-request lifecycle tracking.

This module is the single home of the linear-interpolation percentile the
repo reports everywhere (client swarm, saturation benchmarks, live chaos
runs) — it matches ``statistics.quantiles(..., method="inclusive")`` at the
interior cut points, which is the property the SLO tests pin down.

:class:`RequestTracker` follows every request through the serving stack:

    submit -> propose -> commit -> confirm

- **submit**: the client (or load generator) hands the transaction to the
  cluster,
- **propose**: some honest leader first includes it in a block,
- **commit**: the first honest replica commits a block containing it,
- **confirm**: a client collects f+1 matching replies (only present when
  real clients are attached; loadgen-only runs stop at commit).

Stage latencies derive from first-occurrence timestamps (duplicates from
retransmissions or multi-replica commits are ignored), and
:meth:`RequestTracker.summary` reduces them to the p50/p95/p99 figures
``BENCH_traffic.json`` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The stages a request moves through, in pipeline order.
STAGES = ("submit", "propose", "commit", "confirm")


def percentile(values: list[float], p: float) -> Optional[float]:
    """Linear-interpolated percentile (p in [0, 100]); None when empty.

    Equivalent to ``statistics.quantiles(values, n=100,
    method="inclusive")[p-1]`` for integer ``p`` in (0, 100) and
    ``len(values) >= 2``.
    """
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (p / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99 + mean/max over one latency population."""

    count: int
    p50: Optional[float]
    p95: Optional[float]
    p99: Optional[float]
    mean: Optional[float]
    max: Optional[float]

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "mean": self.mean,
            "max": self.max,
        }


def summarize(values: list[float]) -> LatencySummary:
    """Reduce a latency population to its SLO summary."""
    if not values:
        return LatencySummary(count=0, p50=None, p95=None, p99=None, mean=None, max=None)
    return LatencySummary(
        count=len(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        mean=sum(values) / len(values),
        max=max(values),
    )


class RequestTracker:
    """First-occurrence submit/propose/commit/confirm timestamps per request.

    All ``note_*`` hooks are idempotent (first timestamp wins), so callers
    can feed them from every replica and every retransmission without
    skewing the latency figures.  The tracker never drops entries; bound the
    run, not the tracker.
    """

    __slots__ = ("submitted", "proposed", "committed", "confirmed")

    def __init__(self) -> None:
        self.submitted: dict[str, float] = {}
        self.proposed: dict[str, float] = {}
        self.committed: dict[str, float] = {}
        self.confirmed: dict[str, float] = {}

    # -- lifecycle hooks -------------------------------------------------
    def note_submit(self, tx_id: str, now: float) -> None:
        if tx_id not in self.submitted:
            self.submitted[tx_id] = now

    def note_propose(self, tx_id: str, now: float) -> None:
        if tx_id not in self.proposed:
            self.proposed[tx_id] = now

    def note_commit(self, tx_id: str, now: float) -> None:
        if tx_id not in self.committed:
            self.committed[tx_id] = now

    def note_confirm(self, tx_id: str, now: float) -> None:
        if tx_id not in self.confirmed:
            self.confirmed[tx_id] = now

    # -- derived populations ---------------------------------------------
    def _deltas(self, start: dict[str, float], end: dict[str, float]) -> list[float]:
        return [t - start[tx_id] for tx_id, t in end.items() if tx_id in start]

    def queue_latencies(self) -> list[float]:
        """submit -> propose: time spent waiting in the mempool."""
        return self._deltas(self.submitted, self.proposed)

    def consensus_latencies(self) -> list[float]:
        """propose -> commit: time spent inside the protocol."""
        return self._deltas(self.proposed, self.committed)

    def commit_latencies(self) -> list[float]:
        """submit -> commit: the end-to-end figure loadgen runs report."""
        return self._deltas(self.submitted, self.committed)

    def confirm_latencies(self) -> list[float]:
        """submit -> confirm: end-to-end including client reply quorum."""
        return self._deltas(self.submitted, self.confirmed)

    # -- reporting -------------------------------------------------------
    def committed_count(self) -> int:
        return len(self.committed)

    def pending_count(self) -> int:
        """Submitted but not (yet) committed."""
        return len(self.submitted) - len(
            self.submitted.keys() & self.committed.keys()
        )

    def summary(self) -> dict[str, LatencySummary]:
        return {
            "queue": summarize(self.queue_latencies()),
            "consensus": summarize(self.consensus_latencies()),
            "commit": summarize(self.commit_latencies()),
            "confirm": summarize(self.confirm_latencies()),
        }

    def summary_json(self) -> dict:
        return {stage: s.to_json() for stage, s in self.summary().items()}
