"""Arrival-rate envelopes: multi-horizon sliding-window rate tracking.

An :class:`ArrivalEnvelope` answers "how fast are requests arriving right
now?" the way InferLine-style serving systems do: it tracks the observed
arrival rate over several sliding horizons at once (e.g. the last 1s, 5s
and 30s) and reports the **max across horizons** as the envelope rate.  A
short horizon reacts to bursts; a long horizon remembers sustained load
through momentary lulls; the max of both is the rate a provisioning or
batching decision must be prepared for.

Implementation: one fixed ring of arrival-count buckets at the resolution
of the shortest horizon.  ``observe`` is O(1) amortized; ``rate`` sums the
buckets inside a horizon, O(buckets).  The clock is whatever the caller
feeds in — simulated seconds and wall-clock seconds both work, as long as
observe/rate calls share an origin.

:class:`TrafficEnvelope` composes one cluster-wide envelope with lazily
created per-source envelopes (one per client id), which is what admission
control uses to attribute overload to the sources driving it.
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Default rate horizons (seconds): burst, short-term, sustained.
DEFAULT_HORIZONS = (1.0, 5.0, 30.0)

#: Buckets per shortest horizon: the resolution/memory trade-off.
_BUCKETS_PER_MIN_HORIZON = 8


class ArrivalEnvelope:
    """Sliding-window arrival rates over multiple horizons (one stream)."""

    __slots__ = (
        "horizons",
        "total",
        "_width",
        "_counts",
        "_head_bucket",
        "_last_seen",
    )

    def __init__(self, horizons: Iterable[float] = DEFAULT_HORIZONS) -> None:
        ordered = tuple(sorted(set(float(h) for h in horizons)))
        if not ordered or ordered[0] <= 0.0:
            raise ValueError("horizons must be positive")
        self.horizons = ordered
        #: Total arrivals ever observed.
        self.total = 0
        self._width = ordered[0] / _BUCKETS_PER_MIN_HORIZON
        ring_len = int(ordered[-1] / self._width) + 1
        self._counts = [0] * ring_len
        #: Absolute index of the bucket holding the most recent arrivals.
        self._head_bucket = 0
        self._last_seen = 0.0

    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Rotate the ring forward to the bucket containing ``now``."""
        bucket = int(now / self._width) if now > 0.0 else 0
        head = self._head_bucket
        if bucket <= head:
            return
        counts = self._counts
        ring_len = len(counts)
        steps = bucket - head
        if steps >= ring_len:
            for i in range(ring_len):
                counts[i] = 0
        else:
            for absolute in range(head + 1, bucket + 1):
                counts[absolute % ring_len] = 0
        self._head_bucket = bucket

    def observe(self, now: float, count: int = 1) -> None:
        """Record ``count`` arrivals at time ``now``.

        Out-of-order timestamps (bounded clock skew between sources) are
        credited to the current head bucket rather than rewriting history.
        """
        self._advance(now)
        self._counts[self._head_bucket % len(self._counts)] += count
        self.total += count
        if now > self._last_seen:
            self._last_seen = now

    # ------------------------------------------------------------------
    def rate(self, horizon: float, now: Optional[float] = None) -> float:
        """Observed arrivals/sec over the trailing ``horizon`` seconds."""
        if horizon <= 0.0:
            raise ValueError("horizon must be positive")
        if now is not None:
            self._advance(now)
        counts = self._counts
        ring_len = len(counts)
        span = min(int(horizon / self._width), ring_len - 1)
        head = self._head_bucket
        window = 0
        for absolute in range(head - span, head + 1):
            if absolute >= 0:
                window += counts[absolute % ring_len]
        return window / horizon

    def envelope_rate(self, now: Optional[float] = None) -> float:
        """Max rate across all horizons — the provisioning envelope."""
        if now is not None:
            self._advance(now)
        best = 0.0
        for horizon in self.horizons:
            observed = self.rate(horizon)
            if observed > best:
                best = observed
        return best

    def snapshot(self, now: Optional[float] = None) -> dict:
        """Per-horizon rates plus the envelope, for reporting."""
        if now is not None:
            self._advance(now)
        rates = {f"rate_{horizon:g}s": self.rate(horizon) for horizon in self.horizons}
        rates["envelope"] = max(rates.values()) if rates else 0.0
        rates["total"] = self.total
        return rates


class TrafficEnvelope:
    """Cluster-wide envelope plus lazily tracked per-source envelopes."""

    __slots__ = ("horizons", "cluster", "per_source")

    def __init__(self, horizons: Iterable[float] = DEFAULT_HORIZONS) -> None:
        self.horizons = tuple(horizons)
        self.cluster = ArrivalEnvelope(self.horizons)
        self.per_source: dict[int, ArrivalEnvelope] = {}

    def observe(self, source: int, now: float, count: int = 1) -> None:
        self.cluster.observe(now, count)
        envelope = self.per_source.get(source)
        if envelope is None:
            envelope = ArrivalEnvelope(self.horizons)
            self.per_source[source] = envelope
        envelope.observe(now, count)

    def envelope_rate(self, now: Optional[float] = None) -> float:
        return self.cluster.envelope_rate(now)

    def source_rate(self, source: int, now: Optional[float] = None) -> float:
        envelope = self.per_source.get(source)
        if envelope is None:
            return 0.0
        return envelope.envelope_rate(now)

    def snapshot(self, now: Optional[float] = None) -> dict:
        return {
            "cluster": self.cluster.snapshot(now),
            "sources": {
                source: envelope.snapshot(now)
                for source, envelope in sorted(self.per_source.items())
            },
        }
