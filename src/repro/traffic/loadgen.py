"""Load generators: seeded arrival schedules driving a transaction sink.

This module replaces the ad-hoc per-benchmark client loops with one
serving-stack-shaped pipeline::

    ArrivalSchedule -> generator -> sink(transaction)

- an :class:`ArrivalSchedule` yields deterministic inter-arrival gaps
  (uniform, Poisson, bursty, or a bursty *ramp* that sweeps the offered
  rate up over time) — all randomness comes from a ``random.Random`` seeded
  by an explicit ``(label, seed)`` pair, so a schedule is a pure function
  of its parameters;
- :class:`OpenLoopGenerator` fires transactions into the sink on that
  schedule regardless of completions (the honest way to measure latency
  under overload), via either the **simulated clock**
  (:meth:`OpenLoopGenerator.start`) or the **wall clock**
  (:meth:`OpenLoopGenerator.run_wall_clock`);
- :class:`ClosedLoopGenerator` keeps N transactions in flight and replaces
  each one as it completes (throughput tracks whatever the cluster
  sustains).

The sink is any ``Callable[[Transaction], bool]`` — typically
:meth:`repro.traffic.admission.AdmissionController.offer` — and a falsy
return means the request was shed (counted by the generator as
``rejected``).  The legacy :mod:`repro.workloads` generators are thin
adapters over this module.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from repro.sim.scheduler import Scheduler
from repro.types.transactions import Transaction, make_transaction

#: A transaction sink; falsy return = request shed by admission control.
Sink = Callable[[Transaction], object]

#: Builds transaction ``index`` at time ``now`` (override to control ids).
TransactionFactory = Callable[[int, float], Transaction]


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------
class ArrivalSchedule:
    """Deterministic stream of inter-arrival gaps (seconds)."""

    __slots__ = ()

    def gaps(self) -> Iterator[float]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class UniformArrivals(ArrivalSchedule):
    """A fixed gap of ``1/rate`` — the classic open loop."""

    __slots__ = ("rate",)

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def gaps(self) -> Iterator[float]:
        gap = 1.0 / self.rate
        while True:
            yield gap

    def describe(self) -> str:
        return f"uniform({self.rate:g}/s)"


class PoissonArrivals(ArrivalSchedule):
    """Exponential gaps at mean rate ``rate`` (memoryless arrivals)."""

    __slots__ = ("rate", "seed")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.seed = seed

    def gaps(self) -> Iterator[float]:
        rng = random.Random(("poisson-arrivals", self.seed).__repr__())
        while True:
            yield rng.expovariate(self.rate)

    def describe(self) -> str:
        return f"poisson({self.rate:g}/s, seed={self.seed})"


class BurstArrivals(ArrivalSchedule):
    """``burst_size`` back-to-back arrivals every ``period`` seconds.

    Finite when ``bursts`` is set; gap pattern (first arrival fires
    immediately): ``0 x (burst_size-1), period, 0 x (burst_size-1), ...``.
    """

    __slots__ = ("burst_size", "period", "bursts")

    def __init__(
        self, burst_size: int, period: float, bursts: Optional[int] = None
    ) -> None:
        if burst_size < 1 or period <= 0:
            raise ValueError("burst_size/period must be positive")
        if bursts is not None and bursts < 1:
            raise ValueError("bursts must be positive when bounded")
        self.burst_size = burst_size
        self.period = period
        self.bursts = bursts

    def gaps(self) -> Iterator[float]:
        done = 0
        while self.bursts is None or done < self.bursts:
            done += 1
            for _ in range(self.burst_size - 1):
                yield 0.0
            if self.bursts is not None and done >= self.bursts:
                return  # no trailing wait after the final burst
            yield self.period

    def describe(self) -> str:
        return f"burst({self.burst_size}x every {self.period:g}s)"


class BurstyRampArrivals(ArrivalSchedule):
    """Poisson arrivals whose rate ramps ``base_rate -> peak_rate``.

    Each ``period`` the instantaneous rate climbs linearly from base to
    peak and snaps back (a sawtooth) — the shape saturation searches use to
    watch a cluster cross its knee and recover.  Gaps are drawn from the
    rate at the *current* offset, so the stream stays seeded-deterministic.
    """

    __slots__ = ("base_rate", "peak_rate", "period", "seed")

    def __init__(
        self, base_rate: float, peak_rate: float, period: float, seed: int = 0
    ) -> None:
        if base_rate <= 0 or peak_rate < base_rate or period <= 0:
            raise ValueError("need 0 < base_rate <= peak_rate and period > 0")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.period = period
        self.seed = seed

    def rate_at(self, elapsed: float) -> float:
        phase = (elapsed % self.period) / self.period
        return self.base_rate + (self.peak_rate - self.base_rate) * phase

    def gaps(self) -> Iterator[float]:
        rng = random.Random(("bursty-ramp", self.seed).__repr__())
        elapsed = 0.0
        while True:
            gap = rng.expovariate(self.rate_at(elapsed))
            elapsed += gap
            yield gap

    def describe(self) -> str:
        return (
            f"ramp({self.base_rate:g}->{self.peak_rate:g}/s "
            f"per {self.period:g}s, seed={self.seed})"
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
class _GeneratorBase:
    """Shared bookkeeping: transaction construction and submit counters."""

    __slots__ = ("sink", "client", "factory", "submitted", "rejected", "_next_index")

    def __init__(
        self,
        sink: Sink,
        client: int = 0,
        payload_size: int = 100,
        factory: Optional[TransactionFactory] = None,
    ) -> None:
        self.sink = sink
        self.client = client
        if factory is None:
            payload = payload_size

            def factory(index: int, now: float) -> Transaction:
                return make_transaction(
                    index, client=client, payload_size=payload, submitted_at=now
                )

        self.factory = factory
        #: Transactions handed to the sink, in submission order.
        self.submitted: list[Transaction] = []
        #: Submissions the sink refused (admission shed).
        self.rejected = 0
        self._next_index = 0

    def emit(self, now: float) -> Transaction:
        transaction = self.factory(self._next_index, now)
        self._next_index += 1
        self.submitted.append(transaction)
        if not self.sink(transaction):
            self.rejected += 1
        return transaction


class OpenLoopGenerator(_GeneratorBase):
    """Fire-and-forget arrivals on a schedule (sim or wall clock)."""

    __slots__ = ("schedule", "max_count", "_gaps")

    def __init__(
        self,
        schedule: ArrivalSchedule,
        sink: Sink,
        client: int = 0,
        payload_size: int = 100,
        factory: Optional[TransactionFactory] = None,
        max_count: int = 1_000_000,
    ) -> None:
        super().__init__(sink, client=client, payload_size=payload_size, factory=factory)
        self.schedule = schedule
        self.max_count = max_count
        self._gaps: Optional[Iterator[float]] = None

    # -- simulated clock -------------------------------------------------
    def start(self, scheduler: Scheduler) -> None:
        """Begin emitting on the simulated clock (first arrival fires now)."""
        self._gaps = self.schedule.gaps()
        self._tick(scheduler)

    def _tick(self, scheduler: Scheduler) -> None:
        gaps = self._gaps
        assert gaps is not None
        # Same-instant arrivals (zero gaps) collapse into one callback so a
        # burst costs one scheduler event, not burst_size of them.
        while True:
            if self._next_index >= self.max_count:
                return
            self.emit(scheduler.now)
            try:
                gap = next(gaps)
            except StopIteration:
                return
            if gap > 0.0:
                break
        scheduler.call_after(gap, lambda: self._tick(scheduler), label="loadgen")

    # -- wall clock ------------------------------------------------------
    async def run_wall_clock(
        self, duration: float, now_fn: Callable[[], float]
    ) -> None:
        """Emit on the wall clock for ``duration`` seconds.

        ``now_fn`` supplies the timestamps stamped on transactions (use the
        cluster's scheduler clock so latency math shares an origin).
        """
        import asyncio

        deadline = now_fn() + duration
        for gap in self.schedule.gaps():
            if self._next_index >= self.max_count:
                return
            self.emit(now_fn())
            if now_fn() + gap >= deadline:
                return
            if gap > 0.0:
                await asyncio.sleep(gap)


class ClosedLoopGenerator(_GeneratorBase):
    """Keep ``outstanding`` transactions in flight; refill on completion.

    Wire :meth:`notify_committed` to the cluster's commit notifications
    (``MetricsCollector.commit_listeners``); each completed transaction of
    ours triggers a replacement submission at the completion time.
    """

    __slots__ = ("outstanding", "_clock")

    def __init__(
        self,
        outstanding: int,
        sink: Sink,
        client: int = 0,
        payload_size: int = 100,
        factory: Optional[TransactionFactory] = None,
    ) -> None:
        if outstanding < 1:
            raise ValueError("outstanding must be >= 1")
        super().__init__(sink, client=client, payload_size=payload_size, factory=factory)
        self.outstanding = outstanding
        self._clock: Optional[Callable[[], float]] = None

    def start(self, scheduler: Scheduler) -> None:
        self.start_with_clock(lambda: scheduler.now)

    def start_with_clock(self, now_fn: Callable[[], float]) -> None:
        """Clock-agnostic start: fill the window at the current time."""
        self._clock = now_fn
        for _ in range(self.outstanding):
            self.emit(now_fn())

    def notify_committed(self, transaction: Transaction) -> None:
        if self._clock is None or transaction.client != self.client:
            return
        self.emit(self._clock())
