"""Production traffic subsystem: envelopes, loadgen, batching, admission, SLOs.

The serving-stack layer in front of the consensus core:

- :mod:`repro.traffic.envelope` — multi-horizon arrival-rate envelopes;
- :mod:`repro.traffic.loadgen` — seeded open-/closed-loop load generators;
- :mod:`repro.traffic.batching` — the adaptive proposal-batch controller;
- :mod:`repro.traffic.admission` — bounded-queue admission control;
- :mod:`repro.traffic.slo` — percentile math and request lifecycle SLOs;
- :mod:`repro.traffic.saturation` — max-sustainable-throughput search.
"""

from repro.traffic.admission import AdmissionController
from repro.traffic.batching import AdaptiveBatchController
from repro.traffic.envelope import ArrivalEnvelope, TrafficEnvelope
from repro.traffic.loadgen import (
    ArrivalSchedule,
    BurstArrivals,
    BurstyRampArrivals,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    PoissonArrivals,
    UniformArrivals,
)
from repro.traffic.slo import (
    LatencySummary,
    RequestTracker,
    percentile,
    summarize,
)

__all__ = [
    "AdmissionController",
    "AdaptiveBatchController",
    "ArrivalEnvelope",
    "TrafficEnvelope",
    "ArrivalSchedule",
    "BurstArrivals",
    "BurstyRampArrivals",
    "ClosedLoopGenerator",
    "OpenLoopGenerator",
    "PoissonArrivals",
    "UniformArrivals",
    "LatencySummary",
    "RequestTracker",
    "percentile",
    "summarize",
]
