"""The safety journal: durable storage for one replica.

The journal holds the minimal state a replica must never forget, even
across a crash, to remain *safe* (liveness state is rebuilt from peers):

- ``r_vote`` — never vote twice for the same round,
- ``rank_lock`` — never vote against the lock,
- ``v_cur`` / ``entered_view`` / per-proposer fallback vote maps — never
  double-vote a fallback height,
- proposed (view, round) pairs and fallback proposal heights — never
  equivocate after restart.

Two implementations share one interface (``write`` / ``read`` / ``empty``):

- :class:`SafetyJournal` — the simulator's in-memory stand-in.  A "write"
  is a deep snapshot kept in memory; the object survives the crash (it
  models the disk) while the replica's other state is wiped on recovery.
- :class:`FileSafetyJournal` — real files for the multi-process live
  runtime, built to survive ``kill -9`` *during a write*.  Snapshots are
  appended as CRC-framed records; a truncated or corrupted tail record
  (the signature of a crash mid-append) is detected at load time and
  recovery falls back to the last intact record instead of raising.
  Periodic compaction rewrites the file atomically (tmp + ``os.replace``)
  so the journal never grows without bound.
"""

from __future__ import annotations

import copy
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.types.certificates import Rank


@dataclass
class SafetySnapshot:
    """One journaled safety-state record."""

    r_vote: int = 0
    rank_lock: Rank = field(default_factory=Rank.zero)
    v_cur: int = 0
    fallback_mode: bool = False
    entered_view: int = -1
    fallbacks_entered: int = 0
    #: The fallback vote maps for the entered view (proposer -> value).
    fallback_view: Optional[int] = None
    fallback_r_vote: dict[int, int] = field(default_factory=dict)
    fallback_h_vote: dict[int, int] = field(default_factory=dict)
    #: Steady-state proposals made: set of (view, round).
    proposed: set[tuple[int, int]] = field(default_factory=set)
    #: Fallback proposals made: view -> max height proposed.
    fallback_proposed: dict[int, int] = field(default_factory=dict)

    def clone(self) -> "SafetySnapshot":
        return copy.deepcopy(self)


class SafetyJournal:
    """Simulated write-ahead safety storage."""

    def __init__(self) -> None:
        self._latest: Optional[SafetySnapshot] = None
        self.writes = 0

    def write(self, snapshot: SafetySnapshot) -> None:
        """Persist a snapshot (overwrites; the journal is a single record)."""
        self._latest = snapshot.clone()
        self.writes += 1

    def read(self) -> Optional[SafetySnapshot]:
        """Latest persisted snapshot, or None if never written."""
        if self._latest is None:
            return None
        return self._latest.clone()

    @property
    def empty(self) -> bool:
        return self._latest is None


# ----------------------------------------------------------------------
# Snapshot <-> JSON (the FileSafetyJournal record body)
# ----------------------------------------------------------------------
def snapshot_to_dict(snapshot: SafetySnapshot) -> dict[str, object]:
    """A JSON-safe dict carrying every :class:`SafetySnapshot` field."""
    return {
        "r_vote": snapshot.r_vote,
        "rank_lock": [
            snapshot.rank_lock.view,
            snapshot.rank_lock.endorsed,
            snapshot.rank_lock.round,
        ],
        "v_cur": snapshot.v_cur,
        "fallback_mode": snapshot.fallback_mode,
        "entered_view": snapshot.entered_view,
        "fallbacks_entered": snapshot.fallbacks_entered,
        "fallback_view": snapshot.fallback_view,
        "fallback_r_vote": {str(k): v for k, v in snapshot.fallback_r_vote.items()},
        "fallback_h_vote": {str(k): v for k, v in snapshot.fallback_h_vote.items()},
        "proposed": sorted([list(pair) for pair in snapshot.proposed]),
        "fallback_proposed": {
            str(k): v for k, v in snapshot.fallback_proposed.items()
        },
    }


def snapshot_from_dict(data: dict[str, Any]) -> SafetySnapshot:
    """Rebuild a :class:`SafetySnapshot` from :func:`snapshot_to_dict` output.

    Raises ``KeyError`` / ``TypeError`` / ``ValueError`` on malformed input;
    the journal reader treats any of those as a corrupt record.
    """
    view, endorsed, round_number = data["rank_lock"]
    return SafetySnapshot(
        r_vote=int(data["r_vote"]),
        rank_lock=Rank(view=int(view), endorsed=bool(endorsed), round=int(round_number)),
        v_cur=int(data["v_cur"]),
        fallback_mode=bool(data["fallback_mode"]),
        entered_view=int(data["entered_view"]),
        fallbacks_entered=int(data["fallbacks_entered"]),
        fallback_view=(
            None if data["fallback_view"] is None else int(data["fallback_view"])
        ),
        fallback_r_vote={int(k): int(v) for k, v in data["fallback_r_vote"].items()},
        fallback_h_vote={int(k): int(v) for k, v in data["fallback_h_vote"].items()},
        proposed={(int(v), int(r)) for v, r in data["proposed"]},
        fallback_proposed={
            int(k): int(v) for k, v in data["fallback_proposed"].items()
        },
    )


class FileSafetyJournal:
    """Crash-safe file-backed safety journal (``SafetyJournal`` interface).

    Record format: one ``<crc32-hex8> <compact-json>\\n`` line per write.
    The CRC covers the JSON text, so a record interrupted by ``kill -9``
    (short line, garbled bytes, missing newline) fails validation and the
    loader falls back to the most recent *intact* record — the replica
    restarts from the last fully persisted safety state, which is exactly
    write-ahead semantics: a vote whose journal record never completed was
    never sent.

    Every ``compact_every`` writes the file is rewritten to a single record
    via tmp + ``os.replace`` (atomic on POSIX), bounding file size without
    ever exposing a half-written journal.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync: bool = False,
        compact_every: int = 512,
    ) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.path = Path(path)
        self.fsync = fsync
        self.compact_every = compact_every
        self.writes = 0
        #: Records discarded at load because they failed CRC/JSON checks.
        self.corrupt_records_dropped = 0
        #: True when the load had to skip a bad tail to find good state.
        self.recovered_from_corruption = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._latest: Optional[SafetySnapshot] = None
        self._records_in_file = 0
        self._load()
        self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Load / recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for line in raw.split(b"\n"):
            if not line:
                continue
            self._records_in_file += 1
            snapshot = self._parse_record(line)
            if snapshot is None:
                self.corrupt_records_dropped += 1
            else:
                self._latest = snapshot
        if self.corrupt_records_dropped and self._latest is not None:
            self.recovered_from_corruption = True

    @staticmethod
    def _parse_record(line: bytes) -> Optional[SafetySnapshot]:
        try:
            crc_text, body = line.split(b" ", 1)
            if int(crc_text, 16) != zlib.crc32(body):
                return None
            return snapshot_from_dict(json.loads(body.decode("utf-8")))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    # SafetyJournal interface
    # ------------------------------------------------------------------
    def write(self, snapshot: SafetySnapshot) -> None:
        body = json.dumps(
            snapshot_to_dict(snapshot), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        line = f"{zlib.crc32(body):08x} ".encode("ascii") + body + b"\n"
        self._file.write(line.decode("utf-8"))
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._latest = snapshot.clone()
        self.writes += 1
        self._records_in_file += 1
        if self._records_in_file >= self.compact_every:
            self.checkpoint()

    def read(self) -> Optional[SafetySnapshot]:
        if self._latest is None:
            return None
        return self._latest.clone()

    @property
    def empty(self) -> bool:
        return self._latest is None

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Atomically rewrite the journal down to the latest record."""
        if self._latest is None:
            return
        body = json.dumps(
            snapshot_to_dict(self._latest), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        line = f"{zlib.crc32(body):08x} ".encode("ascii") + body + b"\n"
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        self._file = open(self.path, "a", encoding="utf-8")
        self._records_in_file = 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
