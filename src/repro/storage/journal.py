"""The safety journal: simulated durable storage for one replica.

The journal holds the minimal state a replica must never forget, even
across a crash, to remain *safe* (liveness state is rebuilt from peers):

- ``r_vote`` — never vote twice for the same round,
- ``rank_lock`` — never vote against the lock,
- ``v_cur`` / ``entered_view`` / per-proposer fallback vote maps — never
  double-vote a fallback height,
- proposed (view, round) pairs and fallback proposal heights — never
  equivocate after restart.

In the simulation a "write" is a deep snapshot kept in memory; the object
survives the crash (it models the disk), while the replica's other state is
wiped on recovery.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from repro.types.certificates import Rank


@dataclass
class SafetySnapshot:
    """One journaled safety-state record."""

    r_vote: int = 0
    rank_lock: Rank = field(default_factory=Rank.zero)
    v_cur: int = 0
    fallback_mode: bool = False
    entered_view: int = -1
    fallbacks_entered: int = 0
    #: The fallback vote maps for the entered view (proposer -> value).
    fallback_view: Optional[int] = None
    fallback_r_vote: dict[int, int] = field(default_factory=dict)
    fallback_h_vote: dict[int, int] = field(default_factory=dict)
    #: Steady-state proposals made: set of (view, round).
    proposed: set[tuple[int, int]] = field(default_factory=set)
    #: Fallback proposals made: view -> max height proposed.
    fallback_proposed: dict[int, int] = field(default_factory=dict)

    def clone(self) -> "SafetySnapshot":
        return copy.deepcopy(self)


class SafetyJournal:
    """Simulated write-ahead safety storage."""

    def __init__(self) -> None:
        self._latest: Optional[SafetySnapshot] = None
        self.writes = 0

    def write(self, snapshot: SafetySnapshot) -> None:
        """Persist a snapshot (overwrites; the journal is a single record)."""
        self._latest = snapshot.clone()
        self.writes += 1

    def read(self) -> Optional[SafetySnapshot]:
        """Latest persisted snapshot, or None if never written."""
        if self._latest is None:
            return None
        return self._latest.clone()

    @property
    def empty(self) -> bool:
        return self._latest is None
