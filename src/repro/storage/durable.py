"""Durable and recovering replicas.

:class:`DurableReplica` journals its safety state after every handled event.
Because the simulation delivers events atomically (a crash can only happen
*between* events), snapshot-after-every-event gives exactly write-ahead
semantics with respect to any message the replica has sent.

:class:`RecoveringReplica` crashes at ``crash_at`` — losing its block store,
ledger, mempool, vote accumulators and all fallback working state — and at
``recover_at`` restores the journal, rebuilds volatile state from scratch,
and rejoins the protocol.  Missing blocks stream back in through the normal
catch-up path (certificate-driven block requests), so the replica recommits
the chain and resumes voting without ever contradicting its pre-crash votes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.replica import Replica
from repro.core.safety import FallbackVoteState
from repro.ledger.ledger import StateMachine
from repro.mempool.mempool import Mempool
from repro.storage.journal import SafetyJournal, SafetySnapshot


class DurableReplica(Replica):
    """An honest replica with journaled safety state."""

    def __init__(self, *args, journal: Optional[SafetyJournal] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.journal = journal if journal is not None else SafetyJournal()
        # A pre-populated journal means this is a process restart (the live
        # runtime hands every incarnation the same on-disk journal): restore
        # the persisted safety state *before* the first write so the new
        # process can never contradict votes its predecessor already sent.
        # Volatile state (ledger, block store, mempool) starts empty and is
        # rebuilt through the BlockRequest/ChainRequest catch-up path.
        snapshot = self.journal.read()
        if snapshot is not None:
            self._restore(snapshot)
        self._persist()

    # Journal after every externally visible step.
    def deliver(self, sender: int, message: object) -> None:
        super().deliver(sender, message)
        if not self.crashed:
            self._persist()

    def on_timer(self, name: str) -> None:
        super().on_timer(name)
        if not self.crashed:
            self._persist()

    def on_start(self) -> None:
        super().on_start()
        self._persist()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _persist(self) -> None:
        snapshot = SafetySnapshot(
            r_vote=self.safety.r_vote,
            rank_lock=self.safety.rank_lock,
            v_cur=self.v_cur,
            fallback_mode=self.fallback_mode,
            entered_view=self.fallback.entered_view if self.fallback else -1,
            fallbacks_entered=self.fallbacks_entered,
            proposed=set(self._proposed),
        )
        votes = self.safety.fallback_votes
        if votes is not None:
            snapshot.fallback_view = votes.view
            snapshot.fallback_r_vote = dict(votes.r_vote)
            snapshot.fallback_h_vote = dict(votes.h_vote)
        if self.fallback is not None:
            snapshot.fallback_proposed = self.fallback.proposed_heights()
        self.journal.write(snapshot)

    def _restore(self, snapshot: SafetySnapshot) -> None:
        self.safety.r_vote = snapshot.r_vote
        self.safety.rank_lock = snapshot.rank_lock
        self.v_cur = snapshot.v_cur
        self.fallback_mode = snapshot.fallback_mode
        self.fallbacks_entered = snapshot.fallbacks_entered
        self._proposed = set(snapshot.proposed)
        if snapshot.fallback_view is not None:
            state = FallbackVoteState(view=snapshot.fallback_view)
            state.r_vote = dict(snapshot.fallback_r_vote)
            state.h_vote = dict(snapshot.fallback_h_vote)
            self.safety._fallback_votes = state
        if self.fallback is not None:
            self.fallback.entered_view = snapshot.entered_view
            self.fallback.restore_proposed_heights(snapshot.fallback_proposed)
            # Never re-propose fallback blocks for already-covered heights:
            # the proposed-height watermark gates _propose_next_height, and
            # entering the same view again is blocked by entered_view.


class RecoveringReplica(DurableReplica):
    """Crashes, loses volatile state, restores the journal, rejoins.

    With explicit ``crash_at``/``recover_at`` times, the replica schedules
    its own crash and recovery.  Pass ``None`` for either (or both) to let
    an external driver — typically a
    :class:`~repro.faults.schedule.FaultSchedule` with ``crash(i)`` /
    ``recover(i)`` events — trigger them instead.
    """

    def __init__(
        self,
        *args,
        crash_at: Optional[float] = 50.0,
        recover_at: Optional[float] = 100.0,
        **kwargs,
    ) -> None:
        if crash_at is not None and recover_at is not None and recover_at <= crash_at:
            raise ValueError("recover_at must be after crash_at")
        super().__init__(*args, **kwargs)
        self.crash_at = crash_at
        self.recover_at = recover_at
        self.recovered = False

    @staticmethod
    def factory(
        crash_at: Optional[float] = None,
        recover_at: Optional[float] = None,
        **extra,
    ):
        """A replica factory for builders and fault schedules.

        ``RecoveringReplica.factory()`` (no times) yields replicas driven
        purely by schedule-issued ``crash``/``recover`` events.
        """

        def make(*args, **kwargs):
            return RecoveringReplica(
                *args, crash_at=crash_at, recover_at=recover_at, **extra, **kwargs
            )

        return make

    def on_start(self) -> None:
        super().on_start()
        if self.crash_at is not None:
            self.scheduler.call_at(
                self.crash_at, self.crash, label=f"crash:{self.process_id}"
            )
        if self.recover_at is not None:
            self.scheduler.call_at(
                self.recover_at, self.recover, label=f"recover:{self.process_id}"
            )

    def recover(self) -> None:
        """Restart from the journal with fresh volatile state."""
        snapshot = self.journal.read()
        journal = self.journal
        observer = self.observer
        # Rebuild everything volatile by re-running initialization with a
        # fresh mempool and state machine (the network registration and the
        # crypto identity are unchanged).
        state_machine: Optional[StateMachine] = type(self.ledger.state_machine)()
        Replica.__init__(
            self,
            self.process_id,
            self.config,
            self.crypto,
            self.network,
            self.scheduler,
            mempool=Mempool(batch_size=self.config.batch_size),
            state_machine=state_machine,
            observer=observer,
        )
        self.journal = journal
        if snapshot is not None:
            self._restore(snapshot)
        self.crashed = False
        self.recovered = True
        # Recovery resets r_cur without a round-entry event; tell observers
        # so any round-derived caches (e.g. the leader oracle) are flushed.
        self.observer.on_state_reset(self.process_id, self.now)
        # Resume participation: arm the round timer unless mid-fallback.
        if not self.fallback_mode:
            self._arm_round_timer()
        self._persist()
