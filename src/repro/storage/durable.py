"""Durable and recovering replicas.

:class:`DurableReplica` journals its safety state after every handled event
and defers every network send until that journal write has landed
(:class:`SendOutbox`): a handler's egress is buffered while it runs, the
snapshot is written, and only then is the buffer flushed to the real
network.  A crash at *any* event boundary therefore observes the
write-ahead invariant — anything a peer may have seen is already in the
journal — which is exactly the premise of the recovery argument (a replica
never contradicts a vote it already sent).

:class:`RecoveringReplica` crashes at ``crash_at`` — losing its block store,
ledger, mempool, vote accumulators and all fallback working state — and at
``recover_at`` restores the journal, rebuilds volatile state from scratch,
and rejoins the protocol.  Missing blocks stream back in through the normal
catch-up path (certificate-driven block requests), so the replica recommits
the chain and resumes voting without ever contradicting its pre-crash votes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.replica import Replica
from repro.core.safety import FallbackVoteState
from repro.ledger.ledger import StateMachine
from repro.mempool.mempool import Mempool
from repro.net.network import Network
from repro.storage.journal import SafetyJournal, SafetySnapshot


class SendOutbox:
    """Write-ahead egress buffer: holds sends until the journal is ahead.

    Installed as a durable replica's ``network``; ``send``/``multicast``
    are recorded in arrival order and replayed onto the real network by
    :meth:`flush` — which the replica only calls after ``_persist()``.
    Everything else (topology queries, hooks, metrics counters) passes
    through to the wrapped network unchanged.
    """

    def __init__(self, inner: Network) -> None:
        self.inner = inner
        self._pending: List[Tuple[str, Tuple[Any, ...]]] = []

    def send(self, sender: int, receiver: int, message: object) -> None:
        self._pending.append(("send", (sender, receiver, message)))

    def multicast(
        self, sender: int, message: object, include_self: bool = True
    ) -> None:
        self._pending.append(("multicast", (sender, message, include_self)))

    def flush(self) -> None:
        """Replay the buffer onto the real network, preserving order."""
        pending, self._pending = self._pending, []
        for kind, payload in pending:
            if kind == "send":
                self.inner.send(payload[0], payload[1], payload[2])
            else:
                self.inner.multicast(payload[0], payload[1], include_self=payload[2])

    def discard(self) -> None:
        """Drop buffered sends (the replica crashed before persisting)."""
        self._pending.clear()

    def __len__(self) -> int:
        return len(self._pending)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class DurableReplica(Replica):
    """An honest replica with journaled safety state."""

    def __init__(
        self, *args: Any, journal: Optional[SafetyJournal] = None, **kwargs: Any
    ) -> None:
        super().__init__(*args, **kwargs)
        self.journal = journal if journal is not None else SafetyJournal()
        # Write-ahead egress: wrap the network so every send a handler makes
        # is buffered and only reaches the wire after the journal write that
        # covers it (persist-then-flush in _commit_outbox).
        self.network = SendOutbox(self.network)  # type: ignore[assignment]
        # A pre-populated journal means this is a process restart (the live
        # runtime hands every incarnation the same on-disk journal): restore
        # the persisted safety state *before* the first write so the new
        # process can never contradict votes its predecessor already sent.
        # Volatile state (ledger, block store, mempool) starts empty and is
        # rebuilt through the BlockRequest/ChainRequest catch-up path.
        snapshot = self.journal.read()
        if snapshot is not None:
            self._restore(snapshot)
        self._persist()

    # Journal after every externally visible step, then release the
    # buffered egress: persist-then-flush is the write-ahead discipline
    # the persist-before-send lint rule checks.
    def deliver(self, sender: int, message: object) -> None:
        super().deliver(sender, message)
        self._commit_outbox()

    def on_timer(self, name: str) -> None:
        super().on_timer(name)
        self._commit_outbox()

    def on_start(self) -> None:
        super().on_start()
        self._commit_outbox()

    def _commit_outbox(self) -> None:
        """Journal the handler's safety mutations, then flush its sends."""
        outbox = self.network
        if not isinstance(outbox, SendOutbox):  # pragma: no cover - defensive
            if not self.crashed:
                self._persist()
            return
        if self.crashed:
            # A crashed replica's buffered egress must never reach the wire:
            # nothing it produced after the last persisted snapshot may
            # become visible, or a peer could hold a vote the restarted
            # incarnation does not remember casting.
            outbox.discard()
            return
        self._persist()
        outbox.flush()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _persist(self) -> None:
        snapshot = SafetySnapshot(
            r_vote=self.safety.r_vote,
            rank_lock=self.safety.rank_lock,
            v_cur=self.v_cur,
            fallback_mode=self.fallback_mode,
            entered_view=self.fallback.entered_view if self.fallback else -1,
            fallbacks_entered=self.fallbacks_entered,
            proposed=set(self._proposed),
        )
        votes = self.safety.fallback_votes
        if votes is not None:
            snapshot.fallback_view = votes.view
            snapshot.fallback_r_vote = dict(votes.r_vote)
            snapshot.fallback_h_vote = dict(votes.h_vote)
        if self.fallback is not None:
            snapshot.fallback_proposed = self.fallback.proposed_heights()
        self.journal.write(snapshot)

    def _restore(self, snapshot: SafetySnapshot) -> None:
        # Monotone safety state is max-merged, never plain-assigned: on the
        # normal fresh-incarnation restore the max is a no-op, and it makes
        # a stale snapshot (or a double restore) physically unable to
        # regress r_vote/rank_lock below votes already sent — the
        # monotonic-restore lint rule pins this shape.
        self.safety.r_vote = max(self.safety.r_vote, snapshot.r_vote)
        self.safety.rank_lock = max(self.safety.rank_lock, snapshot.rank_lock)
        self.v_cur = max(self.v_cur, snapshot.v_cur)
        self.fallback_mode = snapshot.fallback_mode
        self.fallbacks_entered = max(self.fallbacks_entered, snapshot.fallbacks_entered)
        self._proposed.update(snapshot.proposed)
        if snapshot.fallback_view is not None:
            state = FallbackVoteState(view=snapshot.fallback_view)
            state.r_vote = dict(snapshot.fallback_r_vote)
            state.h_vote = dict(snapshot.fallback_h_vote)
            self.safety._fallback_votes = state
        if self.fallback is not None:
            self.fallback.entered_view = max(
                self.fallback.entered_view, snapshot.entered_view
            )
            self.fallback.restore_proposed_heights(snapshot.fallback_proposed)
            # Never re-propose fallback blocks for already-covered heights:
            # the proposed-height watermark gates _propose_next_height, and
            # entering the same view again is blocked by entered_view.


class RecoveringReplica(DurableReplica):
    """Crashes, loses volatile state, restores the journal, rejoins.

    With explicit ``crash_at``/``recover_at`` times, the replica schedules
    its own crash and recovery.  Pass ``None`` for either (or both) to let
    an external driver — typically a
    :class:`~repro.faults.schedule.FaultSchedule` with ``crash(i)`` /
    ``recover(i)`` events — trigger them instead.
    """

    def __init__(
        self,
        *args: Any,
        crash_at: Optional[float] = 50.0,
        recover_at: Optional[float] = 100.0,
        **kwargs: Any,
    ) -> None:
        if crash_at is not None and recover_at is not None and recover_at <= crash_at:
            raise ValueError("recover_at must be after crash_at")
        super().__init__(*args, **kwargs)
        self.crash_at = crash_at
        self.recover_at = recover_at
        self.recovered = False

    @staticmethod
    def factory(
        crash_at: Optional[float] = None,
        recover_at: Optional[float] = None,
        **extra: Any,
    ) -> Callable[..., "RecoveringReplica"]:
        """A replica factory for builders and fault schedules.

        ``RecoveringReplica.factory()`` (no times) yields replicas driven
        purely by schedule-issued ``crash``/``recover`` events.
        """

        def make(*args: Any, **kwargs: Any) -> "RecoveringReplica":
            return RecoveringReplica(
                *args, crash_at=crash_at, recover_at=recover_at, **extra, **kwargs
            )

        return make

    def on_start(self) -> None:
        super().on_start()
        if self.crash_at is not None:
            self.scheduler.call_at(
                self.crash_at, self.crash, label=f"crash:{self.process_id}"
            )
        if self.recover_at is not None:
            self.scheduler.call_at(
                self.recover_at, self.recover, label=f"recover:{self.process_id}"
            )

    def recover(self) -> None:
        """Restart from the journal with fresh volatile state."""
        snapshot = self.journal.read()
        journal = self.journal
        observer = self.observer
        # Rebuild everything volatile by re-running initialization with a
        # fresh mempool and state machine (the network registration and the
        # crypto identity are unchanged).
        state_machine: Optional[StateMachine] = type(self.ledger.state_machine)()
        Replica.__init__(
            self,
            self.process_id,
            self.config,
            self.crypto,
            self.network,
            self.scheduler,
            mempool=Mempool(batch_size=self.config.batch_size),
            state_machine=state_machine,
            observer=observer,
        )
        self.journal = journal
        if snapshot is not None:
            self._restore(snapshot)
        self.crashed = False
        self.recovered = True
        # Recovery resets r_cur without a round-entry event; tell observers
        # so any round-derived caches (e.g. the leader oracle) are flushed.
        self.observer.on_state_reset(self.process_id, self.now)
        # Resume participation: arm the round timer unless mid-fallback.
        if not self.fallback_mode:
            self._arm_round_timer()
        self._commit_outbox()
