"""Durable storage and crash recovery.

Production BFT replicas persist a small amount of *safety-critical* state
(DiemBFT's "SafetyRules storage"): the highest voted round, the lock, the
view, and what they have already proposed.  Everything else — block store,
ledger, vote accumulators — is volatile and rebuilt from peers after a
restart.  This package provides the simulated equivalent:

- :class:`SafetyJournal` — write-ahead storage that survives a crash,
- :class:`FileSafetyJournal` — the same contract on real files (CRC-framed
  records, atomic compaction, corrupt-tail fallback) for the multi-process
  live runtime's ``kill -9`` recovery,
- :class:`DurableReplica` — an honest replica that journals its safety
  state after every handled event,
- :class:`RecoveringReplica` — crashes at a configured time, loses all
  volatile state, restores the journal, and rejoins via block sync.
"""

from repro.storage.journal import FileSafetyJournal, SafetySnapshot, SafetyJournal
from repro.storage.durable import DurableReplica, RecoveringReplica

__all__ = [
    "DurableReplica",
    "FileSafetyJournal",
    "RecoveringReplica",
    "SafetyJournal",
    "SafetySnapshot",
]
