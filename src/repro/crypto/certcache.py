"""Cluster-wide cache of certificate verification verdicts.

In the simulation every replica independently re-verifies every QC / f-QC /
f-TC / coin-QC it sees, so a certificate multicast to n replicas costs n
identical threshold-signature verifications.  Real deployments pay that
price because replicas are separate machines; the simulator does not have
to — verification is a pure function of the certificate's content and the
key epoch, so a verdict computed once holds for the whole cluster.

The cache is keyed on ``(certificate content digest, registry epoch)``:

- the *content digest* (``cert.digest``, a :func:`~repro.crypto.hashing.
  hash_fields` over the signed payload plus the signature's epoch, tag and
  signer set) covers every input verification reads, so two certificates
  with the same digest verify identically — a forged certificate carrying a
  copied tag but different fields or a sub-threshold signer set hashes
  differently and cannot inherit a genuine verdict;
- the *epoch* keys verdicts to the PKI generation they were computed under.
  On a registry epoch change (key rotation) old verdicts are both dead by
  key mismatch and explicitly invalidated via :meth:`on_epoch_change`,
  which :class:`~repro.crypto.keys.Registry` calls through its epoch
  listeners.

``enabled=False`` turns the cache into a pass-through (every lookup calls
the verifier), which is the bypass mode the determinism tests use to prove
cached and uncached runs are event-for-event identical.
"""

from __future__ import annotations

from typing import Callable

from repro.crypto.hashing import Digest


class VerifiedCertCache:
    """Shared verification-verdict cache with hit/miss counters."""

    def __init__(self, enabled: bool = True, max_entries: int = 1 << 20) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self._verdicts: dict[tuple[Digest, int], bool] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._verdicts)

    def check(self, digest: Digest, epoch: int, verifier: Callable[[], bool]) -> bool:
        """Return the cached verdict for ``(digest, epoch)`` or compute it.

        ``verifier`` runs at most once per (digest, epoch); with the cache
        disabled it runs every time and nothing is recorded.
        """
        if not self.enabled:
            return verifier()
        key = (digest, epoch)
        verdict = self._verdicts.get(key)
        if verdict is None:
            self.misses += 1
            verdict = verifier()
            if len(self._verdicts) >= self.max_entries:
                self._verdicts.clear()
            self._verdicts[key] = verdict
        else:
            self.hits += 1
        return verdict

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def on_epoch_change(self, new_epoch: int) -> None:
        """Registry epoch listener: drop verdicts from older epochs."""
        stale = [key for key in self._verdicts if key[1] != new_epoch]
        for key in stale:
            del self._verdicts[key]
        self.invalidations += len(stale)

    def clear(self) -> None:
        """Drop every verdict (counters are kept)."""
        self.invalidations += len(self._verdicts)
        self._verdicts.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._verdicts),
            "invalidations": self.invalidations,
        }

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
