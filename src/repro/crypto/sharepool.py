"""Cluster-wide pool of threshold/coin share verification verdicts.

The hot path at large n is share verification: a timeout or coin share
multicast to n replicas is verified n times on arrival, and every
``combine()`` re-verifies the 2f+1 shares it aggregates — so one share can
cost O(n) hash computations cluster-wide, and a quorum's worth costs
O(n^2) per view.  Like certificate verification (see
:mod:`repro.crypto.certcache`), a share verdict is a pure function of the
share's content, the payload it is checked against and the key epoch, so a
verdict computed once by any replica holds for the whole cluster.

The pool is keyed on ``(registry epoch, kind, signer, share epoch, tag,
payload key)``:

- *registry epoch* first, so :meth:`on_epoch_change` can drop stale
  verdicts when the PKI rotates (the :class:`~repro.crypto.keys.Registry`
  calls it through its epoch listeners, exactly like the cert cache);
- the remaining fields cover every input ``verify_share`` reads — a forged
  share carrying a copied tag but a different signer, epoch or payload
  keys differently and cannot inherit a genuine verdict.

``enabled=False`` turns the pool into a pass-through (every lookup calls
the verifier), the bypass mode determinism tests use to prove pooled and
unpooled runs are event-for-event identical.
"""

from __future__ import annotations

from typing import Callable, Hashable

#: A fully-materialized pool key.  ``[0]`` must be the registry epoch the
#: verdict was computed under; the rest identifies the verification inputs.
PoolKey = tuple[Hashable, ...]


class VerifiedSharePool:
    """Shared share-verification verdict pool with hit/miss counters."""

    def __init__(self, enabled: bool = True, max_entries: int = 1 << 20) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self._verdicts: dict[PoolKey, bool] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._verdicts)

    def check(self, key: PoolKey, verifier: Callable[[], bool]) -> bool:
        """Return the pooled verdict for ``key`` or compute and record it.

        ``verifier`` runs at most once per key; with the pool disabled it
        runs every time and nothing is recorded.  ``key[0]`` must be the
        current registry epoch (see :meth:`on_epoch_change`).
        """
        if not self.enabled:
            return verifier()
        verdict = self._verdicts.get(key)
        if verdict is None:
            self.misses += 1
            verdict = verifier()
            if len(self._verdicts) >= self.max_entries:
                self._verdicts.clear()
            self._verdicts[key] = verdict
        else:
            self.hits += 1
        return verdict

    def evict(self, key: PoolKey) -> None:
        """Forget one verdict (deferred-verify eviction after a bad combine)."""
        if self._verdicts.pop(key, None) is not None:
            self.invalidations += 1

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def on_epoch_change(self, new_epoch: int) -> None:
        """Registry epoch listener: drop verdicts from older epochs."""
        stale = [key for key in self._verdicts if key[0] != new_epoch]
        for key in stale:
            del self._verdicts[key]
        self.invalidations += len(stale)

    def clear(self) -> None:
        """Drop every verdict (counters are kept)."""
        self.invalidations += len(self._verdicts)
        self._verdicts.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._verdicts),
            "invalidations": self.invalidations,
        }

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
