"""Simulated threshold signature scheme (ideal model).

A set of ``threshold`` signature *shares* on the same payload, from distinct
replicas, combines into a single constant-size :class:`ThresholdSignature`.
This mirrors the paper's assumption of an ideal threshold scheme dealt by a
trusted dealer; the dealer here is :class:`ThresholdScheme` construction.

As with :mod:`repro.crypto.signatures`, unforgeability is by construction:
shares are only minted through :meth:`ThresholdScheme.sign_share` with the
owner's key, and combining checks share validity, distinctness and count.
The combined signature records the contributing signers — real BLS threshold
signatures do not, but the safety *analysis* (quorum-intersection checks in
``repro.analysis``) wants the voter sets, and the modeled wire size stays
constant (96 bytes, BLS12-381-like) regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.crypto.hashing import Digest, hash_fields
from repro.crypto.keys import KeyPair, Registry
from repro.crypto.signatures import SignatureError

#: Modeled wire sizes, in bytes.
SHARE_WIRE_SIZE = 48
THRESHOLD_SIG_WIRE_SIZE = 96

_SHARE_DOMAIN = "repro/tshare/v1"
_COMBINED_DOMAIN = "repro/tsig/v1"


def _share_tag(signer: int, epoch: int, payload: object) -> Digest:
    return hash_fields(_SHARE_DOMAIN, signer, epoch, payload)


def _combined_tag(epoch: int, payload: object) -> Digest:
    return hash_fields(_COMBINED_DOMAIN, epoch, payload)


@dataclass(frozen=True)
class ThresholdSignatureShare:
    """One replica's share over a payload — the paper's ``{m}_i``."""

    signer: int
    epoch: int
    tag: Digest

    def wire_size(self) -> int:
        return SHARE_WIRE_SIZE


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined threshold signature — constant size on the wire."""

    epoch: int
    tag: Digest
    #: Contributing replicas; analysis-only (not counted in wire size).
    signers: frozenset[int]

    def wire_size(self) -> int:
        return THRESHOLD_SIG_WIRE_SIZE


class ThresholdScheme:
    """Threshold signing facility for one domain (votes, timeouts, ...).

    Args:
        registry: the PKI registry (defines n and the key epoch).
        threshold: number of distinct shares needed to combine (2f+1 for
            quorum certificates, f+1 for the coin — the coin has its own
            wrapper in :mod:`repro.crypto.coin`).
    """

    def __init__(self, registry: Registry, threshold: int) -> None:
        if not 1 <= threshold <= registry.n:
            raise ValueError(
                f"threshold {threshold} out of range for n={registry.n}"
            )
        self.registry = registry
        self.threshold = threshold

    # ------------------------------------------------------------------
    # Share creation / verification
    # ------------------------------------------------------------------
    def sign_share(self, key_pair: KeyPair, payload: object) -> ThresholdSignatureShare:
        """Produce the caller's share on ``payload`` (requires the key)."""
        if key_pair.epoch != self.registry.epoch:
            raise SignatureError("key epoch does not match the registry")
        return ThresholdSignatureShare(
            signer=key_pair.owner,
            epoch=key_pair.epoch,
            tag=_share_tag(key_pair.owner, key_pair.epoch, payload),
        )

    def verify_share(self, share: ThresholdSignatureShare, payload: object) -> bool:
        if not self.registry.is_registered(share.signer):
            return False
        if share.epoch != self.registry.epoch:
            return False
        return share.tag == _share_tag(share.signer, share.epoch, payload)

    # ------------------------------------------------------------------
    # Combining / verifying
    # ------------------------------------------------------------------
    def combine(
        self,
        shares: Iterable[ThresholdSignatureShare],
        payload: object,
        share_verifier: Optional[
            Callable[[ThresholdSignatureShare, object], bool]
        ] = None,
    ) -> ThresholdSignature:
        """Combine ≥ threshold distinct valid shares into one signature.

        ``share_verifier`` replaces the per-share :meth:`verify_share` call
        — callers with a :class:`~repro.crypto.sharepool.VerifiedSharePool`
        pass a pooled verifier so re-verification at combine time costs a
        dictionary lookup instead of a hash per share.
        """
        if share_verifier is None:
            share_verifier = self.verify_share
        valid_signers: set[int] = set()
        for share in shares:
            if not share_verifier(share, payload):
                raise SignatureError(
                    f"share by replica {share.signer} is invalid for {payload!r}"
                )
            valid_signers.add(share.signer)
        if len(valid_signers) < self.threshold:
            raise SignatureError(
                f"need {self.threshold} distinct shares, got {len(valid_signers)}"
            )
        return ThresholdSignature(
            epoch=self.registry.epoch,
            tag=_combined_tag(self.registry.epoch, payload),
            signers=frozenset(valid_signers),
        )

    def verify(self, signature: ThresholdSignature, payload: object) -> bool:
        if signature.epoch != self.registry.epoch:
            return False
        if len(signature.signers) < self.threshold:
            return False
        return signature.tag == _combined_tag(signature.epoch, payload)

    def require_valid(self, signature: ThresholdSignature, payload: object) -> None:
        if not self.verify(signature, payload):
            raise SignatureError(f"invalid threshold signature on {payload!r}")
