"""Common coin for fallback leader election (Loss–Moran style, idealized).

The dealer seeds the coin with a secret.  For each view, every replica can
produce one :class:`CoinShare`; any f+1 distinct valid shares reveal the
coin value ``PRF(secret, view)``, from which the elected leader is
``value mod n``.  Until f+1 shares exist nothing in the system (including the
network adversary, which only observes messages) can compute the value, so
the adversary predicts the election with probability at most 1/n — the
property used in Lemma 7.

The revealed value combined from shares forms the paper's *coin-QC*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.crypto.hashing import Digest, hash_fields
from repro.crypto.keys import KeyPair, Registry
from repro.crypto.signatures import SignatureError

#: Modeled wire sizes, in bytes.
COIN_SHARE_WIRE_SIZE = 48
COIN_PROOF_WIRE_SIZE = 96

_COIN_SHARE_DOMAIN = "repro/coinshare/v1"
_COIN_VALUE_DOMAIN = "repro/coinvalue/v1"


@dataclass(frozen=True)
class CoinShare:
    """One replica's leader-election share for a view."""

    signer: int
    view: int
    epoch: int
    tag: Digest

    def wire_size(self) -> int:
        return COIN_SHARE_WIRE_SIZE


class CommonCoin:
    """Per-cluster common coin dealt at setup.

    Args:
        registry: PKI registry (defines n).
        threshold: shares needed to reveal (f+1).
        seed: the dealer's secret; runs with the same seed elect the same
            leaders, which keeps experiments reproducible.
    """

    def __init__(self, registry: Registry, threshold: int, seed: int = 0) -> None:
        if not 1 <= threshold <= registry.n:
            raise ValueError(f"threshold {threshold} out of range for n={registry.n}")
        self.registry = registry
        self.threshold = threshold
        self._seed = seed

    @property
    def n(self) -> int:
        return self.registry.n

    # ------------------------------------------------------------------
    # Shares
    # ------------------------------------------------------------------
    def share(self, key_pair: KeyPair, view: int) -> CoinShare:
        """Produce the caller's coin share for ``view``."""
        if key_pair.epoch != self.registry.epoch:
            raise SignatureError("key epoch does not match the registry")
        return CoinShare(
            signer=key_pair.owner,
            view=view,
            epoch=key_pair.epoch,
            tag=hash_fields(_COIN_SHARE_DOMAIN, key_pair.owner, key_pair.epoch, view),
        )

    def verify_share(self, share: CoinShare) -> bool:
        if not self.registry.is_registered(share.signer):
            return False
        if share.epoch != self.registry.epoch:
            return False
        expected = hash_fields(
            _COIN_SHARE_DOMAIN, share.signer, share.epoch, share.view
        )
        return share.tag == expected

    # ------------------------------------------------------------------
    # Reveal
    # ------------------------------------------------------------------
    def reveal(
        self,
        shares: Iterable[CoinShare],
        view: int,
        share_verifier: Optional[Callable[[CoinShare], bool]] = None,
    ) -> int:
        """Combine f+1 distinct valid shares for ``view`` into the leader id.

        ``share_verifier`` replaces the per-share :meth:`verify_share` call
        (pooled verification; see :mod:`repro.crypto.sharepool`).

        Raises :class:`SignatureError` if the shares are insufficient.
        """
        if share_verifier is None:
            share_verifier = self.verify_share
        signers: set[int] = set()
        for share in shares:
            if share.view != view:
                raise SignatureError(
                    f"coin share for view {share.view} used for view {view}"
                )
            if not share_verifier(share):
                raise SignatureError(f"invalid coin share by {share.signer}")
            signers.add(share.signer)
        if len(signers) < self.threshold:
            raise SignatureError(
                f"need {self.threshold} distinct coin shares, got {len(signers)}"
            )
        return self._value(view)

    def leader_proof_tag(self, view: int) -> Digest:
        """Unforgeable evidence that the view's coin was revealed.

        Carried inside a coin-QC; verifiable against the revealed leader.
        """
        return hash_fields(_COIN_VALUE_DOMAIN, self._seed, self.registry.epoch, view)

    def verify_leader(self, view: int, leader: int, proof_tag: Digest) -> bool:
        return proof_tag == self.leader_proof_tag(view) and leader == self._value(view)

    def _value(self, view: int) -> int:
        digest = hash_fields(_COIN_VALUE_DOMAIN, self._seed, self.registry.epoch, view)
        return int(digest, 16) % self.n
