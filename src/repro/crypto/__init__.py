"""Simulated cryptographic substrate.

The paper assumes ideal signatures, threshold signatures and a common coin
set up by a trusted dealer.  This package provides exactly that ideal model:
objects that are unforgeable *by construction* (the only way to obtain a
valid share or certificate is through the legitimate API), with wire sizes
modeled on real schemes (Ed25519 / BLS12-381) so that byte-level
communication accounting is meaningful.
"""

from repro.crypto.coin import CoinShare, CommonCoin
from repro.crypto.hashing import Digest, hash_fields
from repro.crypto.keys import KeyPair, Registry
from repro.crypto.signatures import Signature, SignatureError, Signer
from repro.crypto.threshold import (
    ThresholdScheme,
    ThresholdSignature,
    ThresholdSignatureShare,
)

__all__ = [
    "CoinShare",
    "CommonCoin",
    "Digest",
    "hash_fields",
    "KeyPair",
    "Registry",
    "Signature",
    "SignatureError",
    "Signer",
    "ThresholdScheme",
    "ThresholdSignature",
    "ThresholdSignatureShare",
]
