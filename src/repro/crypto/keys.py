"""Key pairs and the PKI registry.

The registry plays the role of the paper's public-key infrastructure: every
replica's public key is known to everyone, and signature verification checks
membership.  Private keys are capability objects — holding the
:class:`KeyPair` is what authorizes signing, so a Byzantine process cannot
sign for an honest replica without its key object.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KeyPair:
    """A (simulated) signing key bound to a replica id."""

    owner: int
    #: Distinguishes regenerated keys for the same owner (e.g. across tests).
    epoch: int = 0

    @property
    def public(self) -> "PublicKey":
        return PublicKey(owner=self.owner, epoch=self.epoch)


@dataclass(frozen=True)
class PublicKey:
    owner: int
    epoch: int = 0


class Registry:
    """PKI stand-in: issues key pairs and answers verification queries."""

    def __init__(self, n: int, epoch: int = 0) -> None:
        if n <= 0:
            raise ValueError("registry needs at least one replica")
        self.n = n
        self.epoch = epoch
        self._keys: dict[int, KeyPair] = {
            replica: KeyPair(owner=replica, epoch=epoch) for replica in range(n)
        }
        #: Called with the new epoch after each key rotation (caches that
        #: hold epoch-scoped state subscribe here to invalidate).
        self._epoch_listeners: list = []

    def add_epoch_listener(self, listener) -> None:
        """Subscribe ``listener(new_epoch)`` to key-rotation events."""
        self._epoch_listeners.append(listener)

    def advance_epoch(self) -> int:
        """Rotate every key to a fresh epoch and notify listeners.

        Signatures and certificates minted under the old epoch stop
        verifying (their epoch no longer matches the registry's).
        """
        self.epoch += 1
        self._keys = {
            replica: KeyPair(owner=replica, epoch=self.epoch)
            for replica in range(self.n)
        }
        for listener in self._epoch_listeners:
            listener(self.epoch)
        return self.epoch

    def key_pair(self, replica: int) -> KeyPair:
        """Hand the private key to its owner (done once, by the 'dealer')."""
        try:
            return self._keys[replica]
        except KeyError:
            raise KeyError(f"replica {replica} is not registered") from None

    def public_key(self, replica: int) -> PublicKey:
        return self.key_pair(replica).public

    def is_registered(self, replica: int) -> bool:
        return replica in self._keys

    def __contains__(self, replica: int) -> bool:
        return self.is_registered(replica)


@dataclass
class DealerOutput:
    """Everything the trusted dealer hands out at setup time."""

    registry: Registry
    key_pairs: dict[int, KeyPair] = field(default_factory=dict)

    @classmethod
    def deal(cls, n: int, epoch: int = 0) -> "DealerOutput":
        registry = Registry(n, epoch=epoch)
        return cls(
            registry=registry,
            key_pairs={replica: registry.key_pair(replica) for replica in range(n)},
        )
