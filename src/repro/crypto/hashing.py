"""Collision-resistant hashing for block identifiers.

We use BLAKE2b (from :mod:`hashlib`) truncated to 16 bytes, rendered as hex.
The paper's H(.) maps arbitrary input to a fixed-size digest; 128 bits is
ample for simulation-scale collision resistance while keeping identifiers
readable in traces.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

#: Modeled wire size of a digest, in bytes (we model a 32-byte digest on the
#: wire even though the in-memory hex id is truncated for readability).
DIGEST_WIRE_SIZE = 32

Digest = str


def hash_bytes(data: bytes) -> Digest:
    """Hash raw bytes to a hex digest."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def hash_fields(*fields: object) -> Digest:
    """Hash a tuple of simple fields (ints, strings, digests, tuples).

    Fields are rendered with an unambiguous length-prefixed encoding so that
    ``hash_fields("ab", "c") != hash_fields("a", "bc")``.
    """
    parts: list[bytes] = []
    for field in _flatten(fields):
        encoded = repr(field).encode("utf-8")
        parts.append(len(encoded).to_bytes(8, "big"))
        parts.append(encoded)
    return hash_bytes(b"".join(parts))


def _flatten(fields: Iterable[object]) -> Iterable[object]:
    for field in fields:
        if isinstance(field, (tuple, list)):
            yield "<seq>"
            yield from _flatten(field)
            yield "</seq>"
        else:
            yield field
