"""Collision-resistant hashing for block identifiers.

We use BLAKE2b (from :mod:`hashlib`) truncated to 16 bytes, rendered as hex.
The paper's H(.) maps arbitrary input to a fixed-size digest; 128 bits is
ample for simulation-scale collision resistance while keeping identifiers
readable in traces.

Performance: :func:`hash_fields` is the single hottest crypto primitive in
the simulator — every signature tag, threshold-share tag, block id and coin
value goes through it, and the same payload tuple is hashed once per replica
that verifies it.  Two optimizations keep it off the profile:

- a **fast stable encoder** (:func:`_encode_into`) that dispatches on the
  concrete field type instead of calling ``repr`` through the generic
  protocol for every field.  The byte encoding is *identical* to the
  historical ``repr``-based one, so digests — and therefore block ids and
  common-coin leader elections — are stable across versions.
- a **digest memo**: payload tuples are hashable, so the full
  fields -> digest mapping is cached process-wide.  The cache is a pure
  function table (same input, same digest) and therefore invisible to
  determinism; ``hash_fields_uncached`` bypasses it for tests that prove
  cached and uncached digests are byte-identical.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

#: Modeled wire size of a digest, in bytes (we model a 32-byte digest on the
#: wire even though the in-memory hex id is truncated for readability).
DIGEST_WIRE_SIZE = 32

Digest = str

_blake2b = hashlib.blake2b


def hash_bytes(data: bytes) -> Digest:
    """Hash raw bytes to a hex digest."""
    return _blake2b(data, digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# Field encoding
# ----------------------------------------------------------------------
# Sequence markers, pre-encoded.  They delimit (possibly nested) tuples and
# lists so that hash_fields((1, 2), 3) != hash_fields(1, (2, 3)).
_SEQ_OPEN = (len(b"'<seq>'")).to_bytes(8, "big") + b"'<seq>'"
_SEQ_CLOSE = (len(b"'</seq>'")).to_bytes(8, "big") + b"'</seq>'"


def _encode_into(parts: bytearray, fields: Iterable[object]) -> None:
    """Append the length-prefixed encoding of ``fields`` to ``parts``.

    The per-field bytes match ``repr(field).encode("utf-8")`` exactly (ints
    take a fast path that is byte-identical), so digests are stable against
    the original generic encoder.
    """
    for field in fields:
        kind = type(field)
        if kind is int:
            encoded = b"%d" % field
        elif kind is str:
            encoded = repr(field).encode("utf-8")
        elif kind is tuple or kind is list:
            parts += _SEQ_OPEN
            _encode_into(parts, field)
            parts += _SEQ_CLOSE
            continue
        else:
            encoded = repr(field).encode("utf-8")
        parts += len(encoded).to_bytes(8, "big")
        parts += encoded


def hash_fields_uncached(*fields: object) -> Digest:
    """Hash a tuple of simple fields, bypassing the digest memo.

    Exists so tests can prove the memoized path returns byte-identical
    digests; production code calls :func:`hash_fields`.
    """
    parts = bytearray()
    _encode_into(parts, fields)
    return _blake2b(bytes(parts), digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# Memoized entry point
# ----------------------------------------------------------------------
#: memo key -> digest.  Bounded: cleared wholesale when it outgrows the
#: limit (simple and O(1) amortized; a run that genuinely produces millions
#: of distinct payloads just pays an occasional cold restart).
_MEMO: dict[object, Digest] = {}
_MEMO_LIMIT = 1 << 20


def _memo_key(value: object) -> object:
    """A hashable key with the invariant *equal keys => equal encodings*.

    The raw fields tuple is not a sound key: ``False == 0`` (and
    ``1 == 1.0``) yet they encode differently, so numeric scalars are tagged
    with their concrete type.  Strings only ever equal strings and stay
    untagged; tuples and lists encode identically, so both map to a plain
    tuple of child keys.  Anything else raises TypeError, routing the call
    to the uncached path rather than risking a conflation.
    """
    kind = type(value)
    if kind is str:
        return value
    if kind is int or kind is bool or kind is float:
        return (kind, value)
    if kind is tuple or kind is list:
        return tuple(_memo_key(item) for item in value)
    if value is None:
        return _NONE_KEY
    raise TypeError(f"unmemoizable field type {kind.__name__}")


_NONE_KEY = (type(None), None)


def hash_fields(*fields: object) -> Digest:
    """Hash a tuple of simple fields (ints, strings, digests, tuples).

    Fields are rendered with an unambiguous length-prefixed encoding so that
    ``hash_fields("ab", "c") != hash_fields("a", "bc")``.  Results are
    memoized for the simple field types the protocol actually hashes.
    """
    try:
        key = _memo_key(fields)
    except TypeError:  # exotic field: encode directly, skip the memo
        return hash_fields_uncached(*fields)
    digest = _MEMO.get(key)
    if digest is None:
        digest = hash_fields_uncached(*fields)
        if len(_MEMO) >= _MEMO_LIMIT:
            _MEMO.clear()
        _MEMO[key] = digest
    return digest


def clear_hash_cache() -> None:
    """Drop the digest memo (tests; never needed for correctness)."""
    _MEMO.clear()


def hash_cache_size() -> int:
    """Number of memoized digests (introspection for tests/benchmarks)."""
    return len(_MEMO)
