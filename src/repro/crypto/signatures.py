"""Simulated digital signatures (ideal model).

A :class:`Signature` is valid iff it was produced through
:meth:`Signer.sign` with the owner's private :class:`KeyPair`.  Validity is
encoded by an unforgeable token: the signature stores a keyed digest that
only the signing path computes, and verification recomputes it.  Since the
key material never crosses the simulated wire, a Byzantine process cannot
fabricate a signature for another replica — matching the paper's ideal-
signature assumption.

Wire size is modeled on Ed25519 (64 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_fields
from repro.crypto.keys import KeyPair, Registry

#: Modeled wire size of one signature, in bytes.
SIGNATURE_WIRE_SIZE = 64

_SIGNING_DOMAIN = "repro/sig/v1"


class SignatureError(ValueError):
    """Raised when a signature fails verification."""


def _tag(signer: int, epoch: int, payload: object) -> Digest:
    return hash_fields(_SIGNING_DOMAIN, signer, epoch, payload)


@dataclass(frozen=True)
class Signature:
    """A signature by ``signer`` over ``payload``-shaped data.

    The payload itself is not stored; callers verify a signature *against*
    the payload they believe was signed, exactly like a real scheme.
    """

    signer: int
    epoch: int
    tag: Digest

    def wire_size(self) -> int:
        return SIGNATURE_WIRE_SIZE


class Signer:
    """Per-replica signing facility, initialized from the dealer's key."""

    def __init__(self, key_pair: KeyPair, registry: Registry) -> None:
        self.key_pair = key_pair
        self.registry = registry

    @property
    def replica(self) -> int:
        return self.key_pair.owner

    def sign(self, payload: object) -> Signature:
        """Sign a payload (any hashable-representable object)."""
        return Signature(
            signer=self.key_pair.owner,
            epoch=self.key_pair.epoch,
            tag=_tag(self.key_pair.owner, self.key_pair.epoch, payload),
        )


def verify(registry: Registry, signature: Signature, payload: object) -> bool:
    """Check that ``signature`` is a valid signature on ``payload``."""
    if not registry.is_registered(signature.signer):
        return False
    if signature.epoch != registry.epoch:
        return False
    return signature.tag == _tag(signature.signer, signature.epoch, payload)


def require_valid(registry: Registry, signature: Signature, payload: object) -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(registry, signature, payload):
        raise SignatureError(
            f"invalid signature by replica {signature.signer} on {payload!r}"
        )
