"""Named protocol presets (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.core.config import ProtocolConfig, ProtocolVariant


@dataclass(frozen=True)
class ProtocolPreset:
    """A named, describable protocol configuration factory."""

    name: str
    description: str
    paper_sync_cost: str
    paper_async_live: bool
    make_config: Callable[[int], ProtocolConfig]

    def config(self, n: int, **overrides) -> ProtocolConfig:
        base = self.make_config(n)
        if overrides:
            base = replace(base, **overrides)
        return base


def fallback_smr_config(n: int, **overrides) -> ProtocolConfig:
    """The paper's protocol: DiemBFT steady state + async fallback, 3-chain."""
    return ProtocolConfig(n=n, variant=ProtocolVariant.FALLBACK_3CHAIN, **overrides)


def fallback_2chain_config(n: int, **overrides) -> ProtocolConfig:
    """Section 4: 1-chain lock, 2-chain commit, 2-height fallback chains."""
    return ProtocolConfig(n=n, variant=ProtocolVariant.FALLBACK_2CHAIN, **overrides)


def diembft_config(n: int, **overrides) -> ProtocolConfig:
    """Baseline DiemBFT (Figure 1): quadratic pacemaker, not live if async."""
    return ProtocolConfig(n=n, variant=ProtocolVariant.DIEMBFT, **overrides)


def always_fallback_config(n: int, **overrides) -> ProtocolConfig:
    """Always-quadratic asynchronous baseline (VABA/ACE stand-in)."""
    return ProtocolConfig(n=n, variant=ProtocolVariant.ALWAYS_FALLBACK, **overrides)


PROTOCOLS: dict[str, ProtocolPreset] = {
    "fallback-3chain": ProtocolPreset(
        name="fallback-3chain",
        description="Ours: DiemBFT + asynchronous fallback (3-chain commit)",
        paper_sync_cost="O(n)",
        paper_async_live=True,
        make_config=fallback_smr_config,
    ),
    "fallback-2chain": ProtocolPreset(
        name="fallback-2chain",
        description="Ours, Section 4: 2-chain commit for free",
        paper_sync_cost="O(n)",
        paper_async_live=True,
        make_config=fallback_2chain_config,
    ),
    "diembft": ProtocolPreset(
        name="diembft",
        description="HotStuff/DiemBFT baseline (partially synchronous)",
        paper_sync_cost="O(n)",
        paper_async_live=False,
        make_config=diembft_config,
    ),
    "always-fallback": ProtocolPreset(
        name="always-fallback",
        description="VABA/ACE-style always-quadratic asynchronous baseline",
        paper_sync_cost="O(n^2)",
        paper_async_live=True,
        make_config=always_fallback_config,
    ),
}


def preset(name: str) -> ProtocolPreset:
    try:
        return PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise KeyError(f"unknown protocol {name!r}; known: {known}") from None
