"""Assembled protocols: named presets over the replica + engine machinery.

Each preset is a :class:`~repro.core.config.ProtocolConfig` factory plus a
human-readable description, so examples and benchmarks can refer to
protocols by name:

- ``fallback-3chain`` — the paper's protocol (DiemBFT + async fallback).
- ``fallback-2chain`` — Section 4's reduced-latency variant.
- ``diembft``         — partially synchronous baseline (original pacemaker).
- ``always-fallback`` — always-quadratic asynchronous baseline (VABA/ACE
  stand-in).
"""

from repro.protocols.presets import (
    PROTOCOLS,
    ProtocolPreset,
    always_fallback_config,
    diembft_config,
    fallback_2chain_config,
    fallback_smr_config,
    preset,
)

__all__ = [
    "PROTOCOLS",
    "ProtocolPreset",
    "always_fallback_config",
    "diembft_config",
    "fallback_2chain_config",
    "fallback_smr_config",
    "preset",
]
