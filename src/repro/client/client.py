"""BFT SMR clients.

The paper's SMR definition is client-facing: "commits client transactions
as a log akin to a single non-faulty server".  This module provides the
client half of that contract:

- a :class:`ClientRequest` is broadcast to every replica (the standard
  permissioned-BFT dissemination model),
- replicas answer each committed transaction of known origin with a
  :class:`ClientReply` carrying the commit position and block id,
- the client accepts a result once **f+1 replicas agree** on (position,
  block id) — at least one of them is honest, and safety makes honest
  commit logs agree, so f+1 matching replies prove the commit,
- unconfirmed requests are retransmitted on a timer (at-most-once commit
  semantics hold because mempools and blocks deduplicate by ``tx_id``).

Clients run closed-loop: ``outstanding`` requests in flight, a new one
issued per confirmation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler
from repro.types.messages import MESSAGE_OVERHEAD, Message
from repro.types.transactions import Transaction

RETRANSMIT_TIMER = "client-retransmit"


@dataclass(frozen=True)
class ClientRequest(Message):
    """A client transaction submission (client -> every replica)."""

    transaction: Transaction

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + self.transaction.wire_size()


@dataclass(frozen=True)
class ClientReply(Message):
    """A replica's commit notification for one transaction."""

    tx_id: str
    position: int
    block_id: str
    replica: int

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + 48


@dataclass
class Confirmation:
    """A client-side confirmed commit."""

    tx_id: str
    position: int
    block_id: str
    submitted_at: float
    confirmed_at: float
    repliers: frozenset[int]

    @property
    def latency(self) -> float:
        return self.confirmed_at - self.submitted_at


@dataclass
class _PendingRequest:
    transaction: Transaction
    submitted_at: float
    #: replica -> (position, block_id) replies received so far.
    replies: dict[int, tuple[int, str]] = field(default_factory=dict)
    #: retransmissions issued so far (drives exponential backoff).
    attempts: int = 0
    #: absolute time of the next retransmission.
    next_retry_at: float = 0.0


class Client(Process):
    """A closed-loop BFT client.

    Args:
        process_id: network id; must not collide with replica ids (the
            cluster assigns ids >= n).
        f: fault budget — confirmations need f+1 matching replies.
        replica_ids: where to broadcast requests.
        outstanding: requests kept in flight.
        total: stop after this many confirmations (0 = unbounded).
        retransmit_interval: base interval before the first retransmission
            of an unconfirmed request.  ``None`` picks a default derived
            from the cluster's timeout config when built through
            :class:`~repro.runtime.cluster.ClusterBuilder` (2x the round
            timeout), else 10.0.
        retransmit_backoff: per-request multiplicative backoff applied to
            the interval on every retransmission (1.0 = fixed interval).
        retransmit_cap: ceiling on the per-request interval (default: 8x
            the base interval).
    """

    def __init__(
        self,
        process_id: int,
        scheduler: Scheduler,
        network: Network,
        f: int,
        replica_ids: list[int],
        outstanding: int = 5,
        total: int = 0,
        payload_size: int = 100,
        retransmit_interval: Optional[float] = None,
        retransmit_backoff: float = 2.0,
        retransmit_cap: Optional[float] = None,
    ) -> None:
        super().__init__(process_id, scheduler)
        self.network = network
        self.f = f
        self.replica_ids = list(replica_ids)
        self.outstanding = outstanding
        self.total = total
        self.payload_size = payload_size
        self.retransmit_interval = (
            retransmit_interval if retransmit_interval is not None else 10.0
        )
        if self.retransmit_interval <= 0:
            raise ValueError("retransmit_interval must be positive")
        if retransmit_backoff < 1.0:
            raise ValueError("retransmit_backoff must be >= 1.0")
        self.retransmit_backoff = retransmit_backoff
        self.retransmit_cap = (
            retransmit_cap
            if retransmit_cap is not None
            else 8.0 * self.retransmit_interval
        )
        self.pending: dict[str, _PendingRequest] = {}
        self.confirmations: list[Confirmation] = []
        self.retransmissions = 0
        self._next_index = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        for _ in range(self.outstanding):
            self._submit_next()
        self._arm_retransmit_timer()

    def _retry_delay(self, attempts: int) -> float:
        return min(
            self.retransmit_interval * self.retransmit_backoff**attempts,
            self.retransmit_cap,
        )

    def _arm_retransmit_timer(self) -> None:
        if self.pending:
            next_at = min(request.next_retry_at for request in self.pending.values())
            self.set_timer(RETRANSMIT_TIMER, max(next_at - self.now, 1e-6))
        elif not self._done():
            self.set_timer(RETRANSMIT_TIMER, self.retransmit_interval)

    def on_timer(self, name: str) -> None:
        if name != RETRANSMIT_TIMER:
            return
        for request in self.pending.values():
            if request.next_retry_at > self.now:
                continue
            self.retransmissions += 1
            self._broadcast(request.transaction)
            request.attempts += 1
            request.next_retry_at = self.now + self._retry_delay(request.attempts)
        self._arm_retransmit_timer()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _done(self) -> bool:
        return self.total > 0 and len(self.confirmations) >= self.total

    def _submit_next(self) -> None:
        if self.total > 0 and self._next_index >= self.total:
            return  # submission budget exhausted
        index = self._next_index
        self._next_index += 1
        transaction = Transaction(
            tx_id=f"tx-c{self.process_id}-{index}",
            client=self.process_id,
            payload=f"set ckey-{index % 32} c{self.process_id}-{index}",
            payload_size=self.payload_size,
            submitted_at=self.now,
        )
        self.pending[transaction.tx_id] = _PendingRequest(
            transaction=transaction,
            submitted_at=self.now,
            next_retry_at=self.now + self.retransmit_interval,
        )
        self._broadcast(transaction)

    def _broadcast(self, transaction: Transaction) -> None:
        for replica_id in self.replica_ids:
            self.network.send(self.process_id, replica_id, ClientRequest(transaction))

    # ------------------------------------------------------------------
    # Confirmation
    # ------------------------------------------------------------------
    def on_message(self, sender: int, message: object) -> None:
        if not isinstance(message, ClientReply):
            return
        if message.replica != sender or sender not in self.replica_ids:
            return
        request = self.pending.get(message.tx_id)
        if request is None:
            return  # already confirmed or never ours
        request.replies[sender] = (message.position, message.block_id)
        self._check_confirmed(message.tx_id, request)

    def _check_confirmed(self, tx_id: str, request: _PendingRequest) -> None:
        tallies: dict[tuple[int, str], set[int]] = {}
        for replica, verdict in request.replies.items():
            tallies.setdefault(verdict, set()).add(replica)
        for (position, block_id), repliers in tallies.items():
            if len(repliers) >= self.f + 1:
                del self.pending[tx_id]
                self.confirmations.append(
                    Confirmation(
                        tx_id=tx_id,
                        position=position,
                        block_id=block_id,
                        submitted_at=request.submitted_at,
                        confirmed_at=self.now,
                        repliers=frozenset(repliers),
                    )
                )
                self._submit_next()
                return

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def confirmed_latencies(self) -> list[float]:
        return [confirmation.latency for confirmation in self.confirmations]
