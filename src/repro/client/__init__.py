"""BFT SMR client layer: request submission and f+1 confirmation."""

from repro.client.client import Client, ClientReply, ClientRequest, Confirmation

__all__ = ["Client", "ClientReply", "ClientRequest", "Confirmation"]
