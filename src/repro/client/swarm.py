"""Client swarm: many concurrent TCP clients load-testing a live cluster.

The simulator's :class:`~repro.client.client.Client` proves the SMR
contract under a virtual clock; this module points the same contract at a
*real* multi-process cluster over TCP and measures it on the wall clock.

A :class:`SwarmClient` owns one :class:`~repro.net.tcp.TcpTransport`
**without a listener**: it dials every replica, and replies ride back over
those same full-duplex connections (the transport's reply path).  Requests
are broadcast to all replicas; a transaction is *confirmed* once **f+1
replicas agree** on its (position, block id) — at least one of them is
honest, and safety makes honest logs agree.  Unconfirmed requests
retransmit with exponential backoff; commits stay exactly-once because
mempools and blocks deduplicate by ``tx_id``, so retransmission is free of
double-spend hazards and merely re-offers the transaction to whichever
replicas missed it (or were dead the first time).

:class:`ClientSwarm` drives N such clients in two load shapes:

- **closed loop** (default): each client keeps ``outstanding`` requests in
  flight and issues a new one per confirmation — throughput is whatever
  the cluster sustains.
- **open loop**: the swarm injects at a fixed aggregate rate regardless of
  confirmations — the honest way to observe latency under overload.

The resulting :class:`SwarmReport` carries wall-clock throughput and
client-observed commit-latency percentiles (p50/p95/p99), the numbers
``BENCH_live.json`` records.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.client.client import ClientReply, ClientRequest
from repro.net.tcp import TcpTransport
from repro.runtime.spec import ClusterSpec
from repro.traffic.slo import percentile  # noqa: F401  (canonical home; re-exported)
from repro.types.transactions import Transaction
from repro.wire.codec import encode_message

#: Swarm client ids start here — far above any replica id, and distinct
#: from the in-process runtime's convention (ids >= n) so stray status
#: files or logs are easy to attribute.
SWARM_ID_BASE = 1000

#: How often the retransmit scan runs (seconds).
RETRANSMIT_TICK = 0.25


@dataclass
class SwarmConfirmation:
    """One client-confirmed commit (wall-clock latency)."""

    tx_id: str
    position: int
    block_id: str
    latency: float


@dataclass
class _Pending:
    transaction: Transaction
    submitted_at: float
    replies: dict[int, tuple[int, str]] = field(default_factory=dict)
    attempts: int = 0
    next_retry_at: float = 0.0


class SwarmClient:
    """One wall-clock BFT client over TCP (see module docstring)."""

    def __init__(
        self,
        client_id: int,
        spec: ClusterSpec,
        payload_size: int = 100,
        retransmit_interval: float = 2.0,
        retransmit_backoff: float = 2.0,
        retransmit_cap: Optional[float] = None,
    ) -> None:
        self.client_id = client_id
        self.spec = spec
        self.f = spec.config().f
        self.payload_size = payload_size
        self.retransmit_interval = retransmit_interval
        self.retransmit_backoff = retransmit_backoff
        self.retransmit_cap = (
            retransmit_cap if retransmit_cap is not None else 8.0 * retransmit_interval
        )
        self.transport: Optional[TcpTransport] = None
        self.pending: dict[str, _Pending] = {}
        self.confirmations: list[SwarmConfirmation] = []
        self.submitted = 0
        self.retransmissions = 0
        self._next_index = 0
        self._confirmed_event = asyncio.Event()
        self._retransmit_task: Optional[asyncio.Task] = None

    async def start(self) -> None:
        """Dial every replica (no listener: replies are full-duplex)."""
        self.transport = TcpTransport(
            node_id=self.client_id, on_message=self._on_message
        )
        for replica_id, (host, port) in enumerate(self.spec.addresses()):
            self.transport.add_peer(replica_id, host, port)
        self._retransmit_task = asyncio.get_running_loop().create_task(
            self._retransmit_loop(), name=f"swarm-retransmit-{self.client_id}"
        )

    async def close(self) -> None:
        # Swap-before-suspend: take the handle atomically so a concurrent
        # close() cannot cancel/clear a task this frame already joined.
        task, self._retransmit_task = self._retransmit_task, None
        if task is not None:
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
        if self.transport is not None:
            await self.transport.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self) -> str:
        """Broadcast one fresh transaction; returns its tx id."""
        index = self._next_index
        self._next_index += 1
        now = time.monotonic()
        transaction = Transaction(
            tx_id=f"tx-s{self.client_id}-{index}",
            client=self.client_id,
            payload=f"set skey-{index % 32} s{self.client_id}-{index}",
            payload_size=self.payload_size,
            submitted_at=now,
        )
        self.pending[transaction.tx_id] = _Pending(
            transaction=transaction,
            submitted_at=now,
            next_retry_at=now + self.retransmit_interval,
        )
        self.submitted += 1
        self._broadcast(transaction)
        return transaction.tx_id

    def _broadcast(self, transaction: Transaction) -> None:
        assert self.transport is not None
        payload = encode_message(self.client_id, ClientRequest(transaction))
        for replica_id in range(self.spec.n):
            # A refused send (backpressure, reconnecting peer) is fine:
            # the retransmit loop re-offers, and f+1 replies only need a
            # quorum of replicas to have seen the request at all.
            self.transport.send(replica_id, payload)

    async def _retransmit_loop(self) -> None:
        while True:
            await asyncio.sleep(RETRANSMIT_TICK)
            now = time.monotonic()
            for request in self.pending.values():
                if request.next_retry_at > now:
                    continue
                self.retransmissions += 1
                request.attempts += 1
                delay = min(
                    self.retransmit_interval
                    * self.retransmit_backoff**request.attempts,
                    self.retransmit_cap,
                )
                request.next_retry_at = now + delay
                self._broadcast(request.transaction)

    # ------------------------------------------------------------------
    # Confirmation
    # ------------------------------------------------------------------
    def _on_message(self, sender: int, message: object) -> None:
        if not isinstance(message, ClientReply):
            return
        if message.replica != sender or not 0 <= sender < self.spec.n:
            return
        request = self.pending.get(message.tx_id)
        if request is None:
            return  # already confirmed (straggler reply) or never ours
        request.replies[sender] = (message.position, message.block_id)
        self._check_confirmed(message.tx_id, request)

    def _check_confirmed(self, tx_id: str, request: _Pending) -> None:
        tallies: dict[tuple[int, str], set[int]] = {}
        for replica, verdict in request.replies.items():
            tallies.setdefault(verdict, set()).add(replica)
        for (position, block_id), repliers in tallies.items():
            if len(repliers) >= self.f + 1:
                del self.pending[tx_id]
                self.confirmations.append(
                    SwarmConfirmation(
                        tx_id=tx_id,
                        position=position,
                        block_id=block_id,
                        latency=time.monotonic() - request.submitted_at,
                    )
                )
                self._confirmed_event.set()
                return

    async def wait_confirmation(self) -> None:
        """Block until at least one new confirmation lands."""
        await self._confirmed_event.wait()
        self._confirmed_event.clear()


@dataclass
class SwarmReport:
    """Wall-clock load-test outcome across the whole swarm."""

    clients: int
    mode: str
    wall_seconds: float
    submitted: int
    confirmed: int
    retransmissions: int
    throughput_tps: float
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    latency_p99: Optional[float]
    latency_mean: Optional[float]
    latency_max: Optional[float]

    def to_json(self) -> dict:
        return {
            "clients": self.clients,
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "submitted": self.submitted,
            "confirmed": self.confirmed,
            "retransmissions": self.retransmissions,
            "throughput_tps": self.throughput_tps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
            "latency_max": self.latency_max,
        }


class ClientSwarm:
    """N concurrent SwarmClients in closed- or open-loop mode."""

    def __init__(
        self,
        spec: ClusterSpec,
        clients: int = 4,
        mode: str = "closed",
        outstanding: int = 4,
        rate: float = 50.0,
        payload_size: int = 100,
        retransmit_interval: float = 2.0,
    ) -> None:
        if mode not in ("closed", "open"):
            raise ValueError(f"unknown swarm mode {mode!r} (closed|open)")
        if clients < 1:
            raise ValueError("swarm needs at least one client")
        self.spec = spec
        self.mode = mode
        self.outstanding = outstanding
        #: Aggregate open-loop injection rate (tx/s), split across clients.
        self.rate = rate
        self.clients = [
            SwarmClient(
                SWARM_ID_BASE + index,
                spec,
                payload_size=payload_size,
                retransmit_interval=retransmit_interval,
            )
            for index in range(clients)
        ]
        self._wall_seconds = 0.0

    async def run(self, duration: float = 10.0) -> SwarmReport:
        """Drive the load shape for ``duration`` wall-clock seconds."""
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        for client in self.clients:
            await client.start()
        drivers = [
            loop.create_task(
                self._drive(client, duration), name=f"swarm-drive-{client.client_id}"
            )
            for client in self.clients
        ]
        try:
            await asyncio.gather(*drivers)
        finally:
            for task in drivers:
                task.cancel()
            # Shielded: cancelling the swarm mid-run must not abandon the
            # driver tasks or leave client transports half-open.
            await asyncio.shield(self._shutdown(drivers))
            self._wall_seconds = time.monotonic() - started
        return self.report()

    async def _shutdown(self, drivers: "list[asyncio.Task[None]]") -> None:
        """Join cancelled drivers and close every client (shield target)."""
        await asyncio.gather(*drivers, return_exceptions=True)
        for client in self.clients:
            await client.close()

    async def _drive(self, client: SwarmClient, duration: float) -> None:
        deadline = time.monotonic() + duration
        if self.mode == "closed":
            for _ in range(self.outstanding):
                client.submit()
            while time.monotonic() < deadline:
                # Refill the window as confirmations land; the timeout tick
                # keeps the deadline honored when the cluster stalls.
                try:
                    await asyncio.wait_for(
                        client.wait_confirmation(), timeout=RETRANSMIT_TICK
                    )
                except asyncio.TimeoutError:
                    continue
                while (
                    len(client.pending) < self.outstanding
                    and time.monotonic() < deadline
                ):
                    client.submit()
        else:  # open loop
            interval = len(self.clients) / self.rate
            while time.monotonic() < deadline:
                client.submit()
                await asyncio.sleep(interval)

    def report(self) -> SwarmReport:
        latencies = [
            confirmation.latency
            for client in self.clients
            for confirmation in client.confirmations
        ]
        confirmed = len(latencies)
        wall = self._wall_seconds
        return SwarmReport(
            clients=len(self.clients),
            mode=self.mode,
            wall_seconds=wall,
            submitted=sum(client.submitted for client in self.clients),
            confirmed=confirmed,
            retransmissions=sum(client.retransmissions for client in self.clients),
            throughput_tps=confirmed / wall if wall > 0 else 0.0,
            latency_p50=percentile(latencies, 50),
            latency_p95=percentile(latencies, 95),
            latency_p99=percentile(latencies, 99),
            latency_mean=sum(latencies) / confirmed if confirmed else None,
            latency_max=max(latencies, default=None),
        )
