"""A per-replica mempool: pending client transactions awaiting proposal.

In this simulation clients submit to every replica (as in most BFT SMR
deployments, transactions are disseminated out-of-band or broadcast), so
each replica's mempool holds the same logical stream; a replica drains a
batch when it proposes and drops transactions it later sees committed.

The pool is optionally **bounded**: with a ``capacity`` set, submissions
beyond the bound are rejected (``submit`` returns ``False`` and
``rejected_count`` increments) so overload degrades by shedding instead of
by unbounded memory growth — see :mod:`repro.traffic.admission`.  The
default is unbounded, which preserves the historical behavior every
recorded benchmark fingerprint was taken under.
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.types.transactions import Batch, Transaction

if TYPE_CHECKING:
    from repro.traffic.envelope import TrafficEnvelope


class Mempool:
    """FIFO pool with commit-based garbage collection."""

    def __init__(self, batch_size: int = 10, capacity: Optional[int] = None) -> None:
        if batch_size < 0:
            raise ValueError("batch_size must be non-negative")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive when bounded")
        self.batch_size = batch_size
        self.capacity = capacity
        # Plain dicts preserve insertion order (FIFO) and are faster than
        # OrderedDict on the submit/pop hot path.
        self._pending: dict[str, Transaction] = {}
        self.submitted_count = 0
        #: Submissions refused because the pool was at capacity.
        self.rejected_count = 0
        self._envelope: Optional["TrafficEnvelope"] = None
        self._clock: Optional[Callable[[], float]] = None

    def __len__(self) -> int:
        return len(self._pending)

    def attach_envelope(
        self, envelope: "TrafficEnvelope", clock: Callable[[], float]
    ) -> None:
        """Feed accepted submissions into an arrival envelope.

        ``clock`` supplies observation timestamps (the owning replica's
        scheduler clock, so sim and live modes share an origin).
        """
        self._envelope = envelope
        self._clock = clock

    def submit(self, transaction: Transaction) -> bool:
        """Add a client transaction (idempotent on tx_id).

        Returns ``True`` when the transaction is in the pool after the call
        (newly added or already pending), ``False`` when a capacity bound
        rejected it.
        """
        pending = self._pending
        tx_id = transaction.tx_id
        if tx_id in pending:
            return True
        if self.capacity is not None and len(pending) >= self.capacity:
            self.rejected_count += 1
            return False
        pending[tx_id] = transaction
        self.submitted_count += 1
        if self._envelope is not None:
            self._envelope.observe(transaction.client, self._clock())
        return True

    def submit_all(self, transactions: Iterable[Transaction]) -> None:
        for transaction in transactions:
            self.submit(transaction)

    def next_batch(self) -> Batch:
        """Peek the next batch to propose (does not remove — transactions
        leave the pool only when committed, so a failed proposal's payload
        is re-proposed later)."""
        take = list(islice(self._pending.values(), self.batch_size))
        return Batch.of(take)

    def mark_committed(self, transactions: Iterable[Transaction]) -> int:
        """Drop committed transactions; returns how many were present."""
        dropped = 0
        for transaction in transactions:
            if self._pending.pop(transaction.tx_id, None) is not None:
                dropped += 1
        return dropped

    def pending(self) -> list[Transaction]:
        return list(self._pending.values())
