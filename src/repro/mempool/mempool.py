"""A per-replica mempool: pending client transactions awaiting proposal.

In this simulation clients submit to every replica (as in most BFT SMR
deployments, transactions are disseminated out-of-band or broadcast), so
each replica's mempool holds the same logical stream; a replica drains a
batch when it proposes and drops transactions it later sees committed.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable

from repro.types.transactions import Batch, Transaction


class Mempool:
    """FIFO pool with commit-based garbage collection."""

    def __init__(self, batch_size: int = 10) -> None:
        if batch_size < 0:
            raise ValueError("batch_size must be non-negative")
        self.batch_size = batch_size
        # Plain dicts preserve insertion order (FIFO) and are faster than
        # OrderedDict on the submit/pop hot path.
        self._pending: dict[str, Transaction] = {}
        self.submitted_count = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, transaction: Transaction) -> None:
        """Add a client transaction (idempotent on tx_id)."""
        pending = self._pending
        tx_id = transaction.tx_id
        if tx_id not in pending:
            pending[tx_id] = transaction
            self.submitted_count += 1

    def submit_all(self, transactions: Iterable[Transaction]) -> None:
        for transaction in transactions:
            self.submit(transaction)

    def next_batch(self) -> Batch:
        """Peek the next batch to propose (does not remove — transactions
        leave the pool only when committed, so a failed proposal's payload
        is re-proposed later)."""
        take = list(islice(self._pending.values(), self.batch_size))
        return Batch.of(take)

    def mark_committed(self, transactions: Iterable[Transaction]) -> int:
        """Drop committed transactions; returns how many were present."""
        dropped = 0
        for transaction in transactions:
            if self._pending.pop(transaction.tx_id, None) is not None:
                dropped += 1
        return dropped

    def pending(self) -> list[Transaction]:
        return list(self._pending.values())
