"""Client-facing transaction pool."""

from repro.mempool.mempool import Mempool

__all__ = ["Mempool"]
