"""The committed ledger: an append-only log of blocks plus a state machine.

``Ledger.commit_through`` appends the chain suffix from the last committed
block up to a newly committed block ("commit B and all its ancestors"),
applies transactions to the replica's state machine, and records commit
metadata used by the metrics layer (end-to-end latency, committed rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.hashing import Digest
from repro.ledger.blockstore import BlockStore
from repro.types.blocks import AnyBlock
from repro.types.transactions import Transaction


class StateMachine:
    """Interface for the replicated application."""

    def apply(self, transaction: Transaction) -> object:
        """Apply one committed transaction; returns an application result."""
        raise NotImplementedError


class NullStateMachine(StateMachine):
    """Discards commands (used by benchmarks that only count commits)."""

    def apply(self, transaction: Transaction) -> object:
        return None


class KVStateMachine(StateMachine):
    """A tiny key-value store: commands are ``"set key value"`` strings.

    Unknown commands are ignored (committed but not interpreted), so mixed
    workloads are safe.
    """

    def __init__(self) -> None:
        self.data: dict[str, str] = {}

    def apply(self, transaction: Transaction) -> object:
        parts = transaction.payload.split(" ", 2)
        if len(parts) == 3 and parts[0] == "set":
            self.data[parts[1]] = parts[2]
            return parts[2]
        return None


@dataclass
class CommitRecord:
    """One committed block, with when/where it was committed."""

    block: AnyBlock
    position: int
    committed_at: float


@dataclass
class Ledger:
    """Append-only committed log for one replica."""

    store: BlockStore
    state_machine: StateMachine = field(default_factory=NullStateMachine)
    records: list[CommitRecord] = field(default_factory=list)
    _committed_ids: set[Digest] = field(default_factory=set)
    #: tx_id -> (log position, block id) for committed transactions.
    _tx_locations: dict[str, tuple[int, Digest]] = field(default_factory=dict)
    #: Transactions in application order, exactly once each.
    _applied: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._last_committed: AnyBlock = self.store.genesis
        self._committed_ids.add(self.store.genesis.id)

    @property
    def last_committed(self) -> AnyBlock:
        return self._last_committed

    @property
    def height(self) -> int:
        """Number of committed blocks (excluding genesis)."""
        return len(self.records)

    def is_committed(self, block_id: Digest) -> bool:
        return block_id in self._committed_ids

    def commit_through(self, block: AnyBlock, now: float) -> list[CommitRecord]:
        """Commit ``block`` and all its not-yet-committed ancestors.

        Returns the newly appended records (oldest first).  A block that is
        already committed, or that does not extend the current committed
        head (which would be a safety violation and is checked by the
        caller/analysis layer), yields no records.
        """
        if block.id in self._committed_ids:
            return []
        suffix = self.store.chain_to(block, self._last_committed.id)
        if suffix is None:
            # Either we lack intermediate blocks (commit will be retried when
            # they arrive) or the block conflicts with the committed chain.
            return []
        appended: list[CommitRecord] = []
        for chained in suffix:
            record = CommitRecord(
                block=chained, position=len(self.records), committed_at=now
            )
            self.records.append(record)
            self._committed_ids.add(chained.id)
            for transaction in chained.batch:
                # Exactly-once execution: a transaction can legitimately
                # appear in several blocks (it stays in mempools until its
                # first commit is observed); only the first commit applies.
                if transaction.tx_id in self._tx_locations:
                    continue
                self.state_machine.apply(transaction)
                self._tx_locations[transaction.tx_id] = (record.position, chained.id)
                self._applied.append(transaction)
            appended.append(record)
        self._last_committed = block
        return appended

    def committed_blocks(self) -> list[AnyBlock]:
        return [record.block for record in self.records]

    def committed_ids(self) -> list[Digest]:
        return [record.block.id for record in self.records]

    def committed_transactions(self) -> list[Transaction]:
        """Committed transactions in application order, exactly once each."""
        return list(self._applied)

    def record_at(self, position: int) -> Optional[CommitRecord]:
        if 0 <= position < len(self.records):
            return self.records[position]
        return None

    def is_committed_transaction(self, tx_id: str) -> bool:
        return tx_id in self._tx_locations

    def commit_location(self, tx_id: str) -> tuple[int, Digest]:
        """(log position, block id) of a committed transaction."""
        try:
            return self._tx_locations[tx_id]
        except KeyError:
            raise KeyError(f"transaction {tx_id} is not committed") from None
