"""Per-replica block storage: the block tree and ancestry queries.

The store holds every (regular or fallback) block the replica has seen,
keyed by id, with parent links derived from the embedded certificates.  It
answers the queries the protocol needs:

- parent/ancestor walks for the commit rules,
- "do I have the block this certificate certifies?" (catch-up),
- chains from a block back to the last committed block.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.crypto.hashing import Digest
from repro.types.blocks import AnyBlock, genesis_block


class BlockStore:
    """Block tree rooted at genesis."""

    def __init__(self) -> None:
        self._blocks: dict[Digest, AnyBlock] = {}
        self.genesis = genesis_block()
        self._blocks[self.genesis.id] = self.genesis

    def __contains__(self, block_id: Digest) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def add(self, block: AnyBlock) -> bool:
        """Insert a block.  Returns True if it was new.

        Duplicate inserts are no-ops (multicast + forwarding means replicas
        legitimately see the same block many times).
        """
        if block.id in self._blocks:
            return False
        self._blocks[block.id] = block
        return True

    def get(self, block_id: Digest) -> Optional[AnyBlock]:
        return self._blocks.get(block_id)

    def require(self, block_id: Digest) -> AnyBlock:
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"block {block_id[:8]} not in store")
        return block

    def parent(self, block: AnyBlock) -> Optional[AnyBlock]:
        """The block's parent, if we have it (genesis has none)."""
        parent_id = block.parent_id
        if parent_id is None:
            return None
        return self._blocks.get(parent_id)

    def ancestors(self, block: AnyBlock, include_self: bool = False) -> Iterator[AnyBlock]:
        """Walk ancestors from ``block`` toward genesis (stops at gaps)."""
        if include_self:
            yield block
        current = self.parent(block)
        while current is not None:
            yield current
            current = self.parent(current)

    def extends(self, descendant: AnyBlock, ancestor_id: Digest) -> bool:
        """True iff ``descendant`` extends the block with ``ancestor_id``.

        A block extends itself (matching the paper's convention).
        """
        if descendant.id == ancestor_id:
            return True
        return any(block.id == ancestor_id for block in self.ancestors(descendant))

    def chain_to(self, block: AnyBlock, stop_id: Digest) -> Optional[list[AnyBlock]]:
        """Blocks from just after ``stop_id`` up to ``block`` (inclusive).

        Returns None if ``block`` does not extend ``stop_id`` or the chain
        has gaps.  The result is ordered oldest-first and excludes the stop
        block itself — exactly the suffix to append to a committed ledger.
        """
        chain: list[AnyBlock] = []
        current: Optional[AnyBlock] = block
        while current is not None:
            if current.id == stop_id:
                chain.reverse()
                return chain
            chain.append(current)
            current = self.parent(current)
        return None

    def missing_parent(self, block: AnyBlock) -> Optional[Digest]:
        """Id of the block's parent if we don't have it yet, else None."""
        parent_id = block.parent_id
        if parent_id is not None and parent_id not in self._blocks:
            return parent_id
        return None

    def all_blocks(self) -> list[AnyBlock]:
        return list(self._blocks.values())
