"""Block storage and the committed ledger / state machine."""

from repro.ledger.blockstore import BlockStore
from repro.ledger.ledger import KVStateMachine, Ledger, StateMachine

__all__ = ["BlockStore", "KVStateMachine", "Ledger", "StateMachine"]
