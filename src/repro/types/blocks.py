"""Blocks: regular blocks, fallback blocks, genesis.

A regular block is ``B = [id, qc, r, v, txn]`` where ``qc`` certifies the
parent.  A fallback block adds ``height`` (1..3) and ``proposer``.  Block ids
are content hashes, so equivocating proposals have different ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Union

from repro.crypto.hashing import DIGEST_WIRE_SIZE, Digest, hash_fields
from repro.types.certificates import (
    EndorsedFallbackQC,
    FallbackQC,
    ParentCert,
    QC,
    Rank,
)
from repro.types.transactions import EMPTY_BATCH, Batch

#: Modeled wire size of block header fields (round, view, author, ...).
BLOCK_HEADER_WIRE_SIZE = 32

#: Certificate types a block may embed as its parent pointer.
AnyParent = Union[QC, EndorsedFallbackQC, FallbackQC]


def _cert_fingerprint(cert: Optional[AnyParent]) -> tuple:
    """Deterministic identity of a certificate for block hashing.

    Independent of *which* replicas signed (threshold signatures are unique
    per payload), so the same logical parent always hashes identically.
    """
    if cert is None:
        return ("no-parent",)
    if isinstance(cert, EndorsedFallbackQC):
        return (
            "endorsed",
            cert.fqc.block_id,
            cert.fqc.round,
            cert.fqc.view,
            cert.fqc.height,
            cert.fqc.proposer,
            cert.coin_qc.leader,
        )
    if isinstance(cert, FallbackQC):
        return ("fqc", cert.block_id, cert.round, cert.view, cert.height, cert.proposer)
    return ("qc", cert.block_id, cert.round, cert.view)


@dataclass(frozen=True)
class Block:
    """A regular (steady-state) block.

    Attributes:
        qc: certificate for the parent block (None only for genesis).
        round: the block's round number ``r``.
        view: the block's view number ``v``.
        batch: the transaction batch ``txn``.
        author: proposing replica (the round's leader).
    """

    qc: Optional[ParentCert]
    round: int
    view: int
    batch: Batch = field(default=EMPTY_BATCH)
    author: int = -1

    @cached_property
    def id(self) -> Digest:
        return hash_fields(
            "block",
            _cert_fingerprint(self.qc),
            self.round,
            self.view,
            self.batch.digest,
            self.author,
        )

    @property
    def parent_id(self) -> Optional[Digest]:
        return self.qc.block_id if self.qc is not None else None

    @cached_property
    def rank(self) -> Rank:
        return Rank(view=self.view, endorsed=False, round=self.round)

    @property
    def is_genesis(self) -> bool:
        return self.qc is None and self.round == 0

    @cached_property
    def _wire_size(self) -> int:
        qc_size = self.qc.wire_size() if self.qc is not None else 0
        return (
            DIGEST_WIRE_SIZE + BLOCK_HEADER_WIRE_SIZE + qc_size + self.batch.wire_size()
        )

    def wire_size(self) -> int:
        return self._wire_size

    def __repr__(self) -> str:  # compact, for traces
        return f"Block(r={self.round}, v={self.view}, id={self.id[:8]})"


@dataclass(frozen=True)
class FallbackBlock:
    """A fallback block ``B̄ = [B, height, proposer]``.

    ``qc`` is the replica's ``qc_high`` for height 1, and the f-QC of the
    previous f-block in the chain for heights 2 and 3.
    """

    qc: AnyParent
    round: int
    view: int
    height: int
    proposer: int
    batch: Batch = field(default=EMPTY_BATCH)

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ValueError(f"fallback height must be >= 1, got {self.height}")

    @cached_property
    def id(self) -> Digest:
        return hash_fields(
            "fblock",
            _cert_fingerprint(self.qc),
            self.round,
            self.view,
            self.batch.digest,
            self.height,
            self.proposer,
        )

    @property
    def parent_id(self) -> Digest:
        return self.qc.block_id

    @cached_property
    def rank(self) -> Rank:
        """Rank as an unendorsed f-block (endorsement is a certificate affair)."""
        return Rank(view=self.view, endorsed=False, round=self.round)

    @cached_property
    def _wire_size(self) -> int:
        return (
            DIGEST_WIRE_SIZE
            + BLOCK_HEADER_WIRE_SIZE
            + 16  # height + proposer
            + self.qc.wire_size()
            + self.batch.wire_size()
        )

    def wire_size(self) -> int:
        return self._wire_size

    def __repr__(self) -> str:
        return (
            f"FBlock(h={self.height}, r={self.round}, v={self.view}, "
            f"by={self.proposer}, id={self.id[:8]})"
        )


AnyBlock = Union[Block, FallbackBlock]


def genesis_block() -> Block:
    """The unique genesis block: round 0, view 0, empty batch."""
    return Block(qc=None, round=0, view=0, batch=EMPTY_BATCH, author=-1)


def is_fallback(block: AnyBlock) -> bool:
    return isinstance(block, FallbackBlock)
