"""Certificates: ranks, QCs, fallback QCs/TCs, timeout certs, coin-QCs.

Rank ordering (the heart of the paper's safety argument): certificates and
blocks are ranked first by view number, then — within the same view — an
*endorsed* fallback certificate outranks any regular certificate, and ties
beyond that break by round number.  ``Rank`` encodes this as the tuple
``(view, endorsed, round)`` with lexicographic comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Union

from repro.crypto.hashing import Digest, hash_fields
from repro.crypto.threshold import ThresholdSignature

#: Modeled wire size of certificate metadata (ids + numbers), in bytes.
CERT_HEADER_WIRE_SIZE = 48
COIN_QC_WIRE_SIZE = 96


def _signature_fingerprint(signature: ThresholdSignature) -> tuple:
    """Everything verification reads from a threshold signature.

    Certificate content digests must cover the epoch, tag AND signer set:
    a forged certificate carrying a copied tag but a sub-threshold signer
    set has to hash differently from the genuine article, or a verdict
    cache keyed on digests would conflate them.
    """
    return (signature.epoch, signature.tag, tuple(sorted(signature.signers)))


@dataclass(frozen=True)
class Rank:
    """Total order over certificates/blocks: (view, endorsed, round).

    The comparison dunders are all spelled out (no ``total_ordering``) so
    rank comparisons — which sit on the simulator's hottest path — cost one
    native tuple compare instead of a derived-operator dispatch.  bool
    compares/hashes as int, so skipping the int() conversion that
    ``_key()`` performs keeps the ordering identical.
    """

    view: int
    endorsed: bool
    round: int

    def _key(self) -> tuple[int, int, int]:
        return (self.view, int(self.endorsed), self.round)

    def __lt__(self, other: "Rank") -> bool:
        return (self.view, self.endorsed, self.round) < (
            other.view,
            other.endorsed,
            other.round,
        )

    def __le__(self, other: "Rank") -> bool:
        return (self.view, self.endorsed, self.round) <= (
            other.view,
            other.endorsed,
            other.round,
        )

    def __gt__(self, other: "Rank") -> bool:
        return (self.view, self.endorsed, self.round) > (
            other.view,
            other.endorsed,
            other.round,
        )

    def __ge__(self, other: "Rank") -> bool:
        return (self.view, self.endorsed, self.round) >= (
            other.view,
            other.endorsed,
            other.round,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rank):
            return NotImplemented
        return (self.view, self.endorsed, self.round) == (
            other.view,
            other.endorsed,
            other.round,
        )

    def __hash__(self) -> int:
        return hash((self.view, self.endorsed, self.round))

    @classmethod
    def zero(cls) -> "Rank":
        return cls(view=0, endorsed=False, round=0)


# ----------------------------------------------------------------------
# Quorum certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QC:
    """Quorum certificate for a regular block.

    Threshold signature over ``(block_id, round, view)`` from 2f+1 replicas.
    """

    block_id: Digest
    round: int
    view: int
    signature: ThresholdSignature

    @cached_property
    def rank(self) -> Rank:
        return Rank(view=self.view, endorsed=False, round=self.round)

    @cached_property
    def _payload(self) -> tuple:
        return ("vote", self.block_id, self.round, self.view)

    def payload(self) -> tuple:
        """The signed payload (what shares were computed over)."""
        return self._payload

    @cached_property
    def digest(self) -> Digest:
        """Canonical content digest (verified-certificate cache key)."""
        return hash_fields("qc-digest", self._payload, _signature_fingerprint(self.signature))

    def wire_size(self) -> int:
        return CERT_HEADER_WIRE_SIZE + self.signature.wire_size()


@dataclass(frozen=True)
class FallbackQC:
    """Quorum certificate for a fallback block (f-QC).

    Threshold signature over ``(block_id, round, view, height, proposer)``.
    """

    block_id: Digest
    round: int
    view: int
    height: int
    proposer: int
    signature: ThresholdSignature

    @cached_property
    def rank(self) -> Rank:
        """Rank as an *unendorsed* certificate (fallback-internal use)."""
        return Rank(view=self.view, endorsed=False, round=self.round)

    @cached_property
    def _payload(self) -> tuple:
        return (
            "fvote",
            self.block_id,
            self.round,
            self.view,
            self.height,
            self.proposer,
        )

    def payload(self) -> tuple:
        return self._payload

    @cached_property
    def digest(self) -> Digest:
        """Canonical content digest (verified-certificate cache key)."""
        return hash_fields("fqc-digest", self._payload, _signature_fingerprint(self.signature))

    def wire_size(self) -> int:
        return CERT_HEADER_WIRE_SIZE + 16 + self.signature.wire_size()


@dataclass(frozen=True)
class CoinQC:
    """Leader-election certificate: f+1 coin shares revealed view's leader.

    ``proof_tag`` is the coin's unforgeable evidence (see
    :meth:`repro.crypto.coin.CommonCoin.verify_leader`).
    """

    view: int
    leader: int
    proof_tag: Digest

    @cached_property
    def digest(self) -> Digest:
        """Canonical content digest (verified-certificate cache key)."""
        return hash_fields("coinqc-digest", self.view, self.leader, self.proof_tag)

    def wire_size(self) -> int:
        return COIN_QC_WIRE_SIZE


@dataclass(frozen=True)
class EndorsedFallbackQC:
    """An f-QC by the view's elected leader, plus the electing coin-QC.

    Endorsed f-QCs are "handled as a QC in any steps of the protocol" and
    outrank every regular QC of the same view.
    """

    fqc: FallbackQC
    coin_qc: CoinQC

    def __post_init__(self) -> None:
        if self.fqc.view != self.coin_qc.view:
            raise ValueError(
                f"endorsement view mismatch: f-QC view {self.fqc.view} "
                f"vs coin-QC view {self.coin_qc.view}"
            )
        if self.fqc.proposer != self.coin_qc.leader:
            raise ValueError(
                f"f-QC proposer {self.fqc.proposer} is not the elected "
                f"leader {self.coin_qc.leader}"
            )

    @property
    def block_id(self) -> Digest:
        return self.fqc.block_id

    @property
    def round(self) -> int:
        return self.fqc.round

    @property
    def view(self) -> int:
        return self.fqc.view

    @cached_property
    def rank(self) -> Rank:
        return Rank(view=self.fqc.view, endorsed=True, round=self.fqc.round)

    @cached_property
    def digest(self) -> Digest:
        """Canonical content digest (verified-certificate cache key)."""
        return hash_fields("endorsed-digest", self.fqc.digest, self.coin_qc.digest)

    def wire_size(self) -> int:
        return self.fqc.wire_size() + self.coin_qc.wire_size()


#: What a block may embed as its parent certificate / what qc_high holds.
ParentCert = Union[QC, EndorsedFallbackQC]


def max_cert(a: ParentCert, b: ParentCert) -> ParentCert:
    """The paper's ``max(qc1, qc2)``: the higher-ranked certificate."""
    return b if b.rank > a.rank else a


# ----------------------------------------------------------------------
# Timeout certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimeoutCertificate:
    """Round-timeout certificate (baseline DiemBFT pacemaker)."""

    round: int
    signature: ThresholdSignature

    @cached_property
    def _payload(self) -> tuple:
        return ("timeout", self.round)

    def payload(self) -> tuple:
        return self._payload

    @cached_property
    def digest(self) -> Digest:
        """Canonical content digest (verified-certificate cache key)."""
        return hash_fields("tc-digest", self._payload, _signature_fingerprint(self.signature))

    def wire_size(self) -> int:
        return CERT_HEADER_WIRE_SIZE + self.signature.wire_size()


@dataclass(frozen=True)
class FallbackTC:
    """View-timeout certificate (f-TC): 2f+1 shares over a view number."""

    view: int
    signature: ThresholdSignature

    @cached_property
    def _payload(self) -> tuple:
        return ("ftimeout", self.view)

    def payload(self) -> tuple:
        return self._payload

    @cached_property
    def digest(self) -> Digest:
        """Canonical content digest (verified-certificate cache key)."""
        return hash_fields("ftc-digest", self._payload, _signature_fingerprint(self.signature))

    def wire_size(self) -> int:
        return CERT_HEADER_WIRE_SIZE + self.signature.wire_size()


# ----------------------------------------------------------------------
# Genesis
# ----------------------------------------------------------------------
GENESIS_TAG: Digest = hash_fields("genesis-signature")


def genesis_qc(genesis_block_id: Digest) -> QC:
    """The axiomatic QC for the genesis block (round 0, view 0).

    Validators special-case ``round == 0``; the embedded signature is a
    placeholder with an empty signer set.
    """
    return QC(
        block_id=genesis_block_id,
        round=0,
        view=0,
        signature=ThresholdSignature(epoch=0, tag=GENESIS_TAG, signers=frozenset()),
    )


def is_genesis_qc(qc: ParentCert) -> bool:
    return (
        isinstance(qc, QC)
        and qc.round == 0
        and qc.view == 0
        and qc.signature.tag == GENESIS_TAG
    )


def cert_kind(cert: Optional[ParentCert]) -> str:
    """Readable certificate kind, for traces and error messages."""
    if cert is None:
        return "none"
    if isinstance(cert, EndorsedFallbackQC):
        return "endorsed-fqc"
    if isinstance(cert, QC):
        return "genesis-qc" if is_genesis_qc(cert) else "qc"
    return type(cert).__name__
