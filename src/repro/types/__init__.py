"""Protocol data types: transactions, blocks, certificates, messages."""

from repro.types.blocks import Block, FallbackBlock, genesis_block
from repro.types.certificates import (
    CoinQC,
    EndorsedFallbackQC,
    FallbackQC,
    FallbackTC,
    ParentCert,
    QC,
    Rank,
    TimeoutCertificate,
    genesis_qc,
)
from repro.types.transactions import Batch, Transaction

__all__ = [
    "Batch",
    "Block",
    "CoinQC",
    "EndorsedFallbackQC",
    "FallbackBlock",
    "FallbackQC",
    "FallbackTC",
    "ParentCert",
    "QC",
    "Rank",
    "TimeoutCertificate",
    "Transaction",
    "genesis_block",
    "genesis_qc",
]
