"""Protocol messages.

Channels are reliable and authenticated (the network reports the true
sender), so messages do not carry explicit signature objects; where the
paper signs a message (timeouts), the signature bytes are included in the
modeled wire size.  Threshold-signature *shares* are first-class fields
because the protocol aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.coin import CoinShare
from repro.crypto.hashing import DIGEST_WIRE_SIZE, Digest
from repro.crypto.signatures import SIGNATURE_WIRE_SIZE
from repro.crypto.threshold import ThresholdSignatureShare
from repro.types.blocks import AnyBlock, Block, FallbackBlock
from repro.types.certificates import (
    CoinQC,
    FallbackQC,
    FallbackTC,
    ParentCert,
    TimeoutCertificate,
)

#: Modeled per-message envelope overhead (type tag, sender, MAC), in bytes.
MESSAGE_OVERHEAD = 24


class Message:
    """Marker base class for protocol messages."""

    __slots__ = ()

    def wire_size(self) -> int:
        raise NotImplementedError

    @property
    def type_name(self) -> str:
        return type(self).__name__


# ----------------------------------------------------------------------
# Steady state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Proposal(Message):
    """Leader's round-r proposal, multicast to all replicas."""

    block: Block

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + SIGNATURE_WIRE_SIZE + self.block.wire_size()


@dataclass(frozen=True)
class Vote(Message):
    """Threshold share ``{id, r, v}_i`` sent to the next round's leader."""

    block_id: Digest
    round: int
    view: int
    share: ThresholdSignatureShare

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + DIGEST_WIRE_SIZE + 16 + self.share.wire_size()


# ----------------------------------------------------------------------
# Baseline (DiemBFT) pacemaker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PacemakerTimeout(Message):
    """Round-timeout ``⟨{r}_i, qc_high⟩_i``, multicast all-to-all."""

    round: int
    share: ThresholdSignatureShare
    qc_high: ParentCert

    def wire_size(self) -> int:
        return (
            MESSAGE_OVERHEAD
            + SIGNATURE_WIRE_SIZE
            + self.share.wire_size()
            + self.qc_high.wire_size()
        )


@dataclass(frozen=True)
class PacemakerTCMessage(Message):
    """A formed round-TC, forwarded to the next leader (and on entry)."""

    tc: TimeoutCertificate
    qc_high: ParentCert

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + self.tc.wire_size() + self.qc_high.wire_size()


# ----------------------------------------------------------------------
# Asynchronous fallback
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FallbackTimeout(Message):
    """View-timeout ``⟨{v_cur}_i, qc_high⟩_i``, multicast all-to-all."""

    view: int
    share: ThresholdSignatureShare
    qc_high: ParentCert

    def wire_size(self) -> int:
        return (
            MESSAGE_OVERHEAD
            + SIGNATURE_WIRE_SIZE
            + self.share.wire_size()
            + self.qc_high.wire_size()
        )


@dataclass(frozen=True)
class FallbackTCMessage(Message):
    """A formed f-TC, multicast when a replica enters the fallback."""

    ftc: FallbackTC

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + self.ftc.wire_size()


@dataclass(frozen=True)
class FallbackProposal(Message):
    """A fallback block; height-1 proposals also carry the f-TC."""

    fblock: FallbackBlock
    ftc: Optional[FallbackTC] = None

    def wire_size(self) -> int:
        size = MESSAGE_OVERHEAD + SIGNATURE_WIRE_SIZE + self.fblock.wire_size()
        if self.ftc is not None:
            size += self.ftc.wire_size()
        return size


@dataclass(frozen=True)
class FallbackVote(Message):
    """Share ``{id, r, v, h, j}_i`` returned to the f-block's proposer."""

    block_id: Digest
    round: int
    view: int
    height: int
    proposer: int
    share: ThresholdSignatureShare

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + DIGEST_WIRE_SIZE + 24 + self.share.wire_size()


@dataclass(frozen=True)
class FallbackQCMessage(Message):
    """A completed top-height f-QC, multicast to announce chain completion."""

    fqc: FallbackQC

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + SIGNATURE_WIRE_SIZE + self.fqc.wire_size()


@dataclass(frozen=True)
class CoinShareMessage(Message):
    """Leader-election coin share for the current view."""

    share: CoinShare

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + self.share.wire_size()


@dataclass(frozen=True)
class CoinQCMessage(Message):
    """A formed coin-QC, multicast so every replica can exit the fallback."""

    coin_qc: CoinQC

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + self.coin_qc.wire_size()


# ----------------------------------------------------------------------
# Block synchronization (catch-up)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlockRequest(Message):
    """Ask a peer for a block we saw certified but never received."""

    block_id: Digest

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + DIGEST_WIRE_SIZE


@dataclass(frozen=True)
class BlockResponse(Message):
    """Answer to a :class:`BlockRequest`."""

    block: AnyBlock

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + self.block.wire_size()


@dataclass(frozen=True)
class ChainRequest(Message):
    """Range sync: ask for a block plus up to ``max_blocks`` ancestors.

    Used by catch-up (recovering or lagging replicas) to fetch a chain
    suffix in one round trip instead of one request per block.
    """

    block_id: Digest
    max_blocks: int = 32

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + DIGEST_WIRE_SIZE + 4


@dataclass(frozen=True)
class ChainResponse(Message):
    """Answer to a :class:`ChainRequest`: the block and its ancestors,
    newest first, as far back as the holder has them (bounded)."""

    blocks: tuple[AnyBlock, ...]

    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + sum(block.wire_size() for block in self.blocks)
