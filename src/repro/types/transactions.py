"""Client transactions and batches.

A :class:`Transaction` is an opaque client command with a modeled payload
size; replicas never interpret it (except the example state machines, which
parse the payload).  A :class:`Batch` is the ``txn`` field of a block: an
ordered tuple of transactions plus a digest used in the block id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Optional

from repro.crypto.hashing import Digest, hash_fields

#: Modeled per-transaction envelope overhead (ids, signature), in bytes.
TRANSACTION_OVERHEAD = 40


@dataclass(frozen=True)
class Transaction:
    """A client command submitted for replication.

    Attributes:
        tx_id: globally unique identifier assigned by the workload.
        client: submitting client id.
        payload: opaque command body (examples use small strings).
        payload_size: modeled wire size of the body in bytes.
        submitted_at: simulated submission time (for end-to-end latency).
    """

    tx_id: str
    client: int = 0
    payload: str = ""
    payload_size: int = 100
    submitted_at: float = 0.0

    def wire_size(self) -> int:
        return TRANSACTION_OVERHEAD + self.payload_size


@dataclass(frozen=True)
class Batch:
    """The ``txn`` component of a block."""

    transactions: tuple[Transaction, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self):
        return iter(self.transactions)

    @cached_property
    def digest(self) -> Digest:
        return hash_fields("batch", tuple(tx.tx_id for tx in self.transactions))

    @cached_property
    def _wire_size(self) -> int:
        return sum(tx.wire_size() for tx in self.transactions)

    def wire_size(self) -> int:
        return self._wire_size

    @classmethod
    def of(cls, transactions: Iterable[Transaction]) -> "Batch":
        return cls(transactions=tuple(transactions))


EMPTY_BATCH = Batch()


def make_transaction(
    index: int,
    client: int = 0,
    payload: Optional[str] = None,
    payload_size: int = 100,
    submitted_at: float = 0.0,
) -> Transaction:
    """Convenience constructor used by workloads and tests."""
    return Transaction(
        tx_id=f"tx-{client}-{index}",
        client=client,
        payload=payload if payload is not None else f"cmd:{index}",
        payload_size=payload_size,
        submitted_at=submitted_at,
    )
