"""Baseline protocols the paper compares against (Table 1 rows).

Two baselines are implemented from scratch in this repository:

- **DiemBFT with the original quadratic pacemaker** (the HotStuff/Diem row):
  assembled from the same replica machinery with
  :class:`~repro.core.pacemaker.PacemakerEngine` — see
  ``preset("diembft")``.  Linear under synchrony, loses liveness under
  asynchrony.

- **The always-quadratic asynchronous baseline** (the VABA / Dumbo / ACE
  row): :class:`AlwaysFallbackReplica` below.  It never runs the fast path —
  every decision goes through the asynchronous fallback ("make progress as
  if every node is the leader and retroactively decide on a leader"), which
  is the structural pattern of those protocols and matches their O(n²)
  per-decision cost and always-live guarantee.
"""

from repro.baselines.always_fallback import AlwaysFallbackReplica, always_fallback_cluster

__all__ = ["AlwaysFallbackReplica", "always_fallback_cluster"]
