"""The always-quadratic asynchronous baseline (VABA/ACE stand-in).

The state-of-the-art asynchronous protocols (VABA, Dumbo, ACE) follow the
pattern: every replica drives a leader-like instance, and once enough
instances finish, a retroactive coin flip picks whose output counts.  Our
fallback machinery *is* that pattern, so the baseline is simply "run the
fallback for every decision, never the fast path":

- on start, every replica immediately times out (no steady-state attempt),
- on exiting a fallback it immediately times out of the next view,
- steady-state proposals are disabled.

:class:`~repro.core.replica.Replica` already implements this behaviour when
``ProtocolConfig.variant == ALWAYS_FALLBACK``; this module provides the
explicit subclass (for readers looking for "the VABA baseline class") plus a
convenience cluster constructor.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.replica import Replica
from repro.net.conditions import DelayModel
from repro.runtime.cluster import Cluster, ClusterBuilder


class AlwaysFallbackReplica(Replica):
    """A replica hard-wired to the always-fallback (quadratic) protocol.

    The constructor forces the ALWAYS_FALLBACK variant regardless of the
    config passed in, so this class can be dropped into any cluster as "the
    asynchronous-protocol replica".
    """

    def __init__(self, replica_id, config: ProtocolConfig, *args, **kwargs) -> None:
        if config.variant != ProtocolVariant.ALWAYS_FALLBACK:
            config = replace(config, variant=ProtocolVariant.ALWAYS_FALLBACK)
        super().__init__(replica_id, config, *args, **kwargs)


def always_fallback_cluster(
    n: int = 4,
    seed: int = 0,
    delay_model: Optional[DelayModel] = None,
    **config_overrides,
) -> Cluster:
    """Build a cluster running the quadratic baseline."""
    config = ProtocolConfig(
        n=n, variant=ProtocolVariant.ALWAYS_FALLBACK, **config_overrides
    )
    builder = ClusterBuilder(config=config, seed=seed)
    if delay_model is not None:
        builder.with_delay_model(delay_model)
    return builder.build()
