"""Safety rules: the voting and locking state of one replica.

This module isolates the state whose monotonicity the safety proofs rely
on — the highest voted round ``r_vote``, the highest locked rank
``rank_lock``, and the per-proposer fallback vote trackers ``r̄_vote[j]`` /
``h̄_vote[j]`` — behind an API that makes the rules explicit and unit-
testable without a network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import ProtocolConfig
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import Rank


@dataclass
class FallbackVoteState:
    """Per-view fallback vote trackers (reset on Enter Fallback)."""

    view: int
    r_vote: dict[int, int] = field(default_factory=dict)
    h_vote: dict[int, int] = field(default_factory=dict)

    def voted_round(self, proposer: int) -> int:
        return self.r_vote.get(proposer, 0)

    def voted_height(self, proposer: int) -> int:
        return self.h_vote.get(proposer, 0)

    def record(self, proposer: int, round_number: int, height: int) -> None:
        self.r_vote[proposer] = round_number
        self.h_vote[proposer] = height


class SafetyRules:
    """Vote/lock state machine for one replica."""

    def __init__(self, config: ProtocolConfig) -> None:
        self.config = config
        self.r_vote = 0
        self.rank_lock = Rank.zero()
        self._fallback_votes: Optional[FallbackVoteState] = None

    # ------------------------------------------------------------------
    # Steady-state voting (the Vote step)
    # ------------------------------------------------------------------
    def may_vote_regular(
        self,
        block: Block,
        r_cur: int,
        v_cur: int,
        fallback_mode: bool,
        parent_rank: Rank,
    ) -> bool:
        """The paper's Vote rule, including the Figure 2 additions.

        ``parent_rank`` is the effective rank of the block's embedded qc
        (endorsement resolved by the caller).
        """
        if block.qc is None:
            return False
        if block.round != r_cur or block.view != v_cur:
            return False
        if block.round <= self.r_vote:
            return False
        if parent_rank < self.rank_lock:
            return False
        if self.config.uses_fallback:
            if fallback_mode:
                return False
            if block.round != block.qc.round + 1:
                return False
        return True

    def record_regular_vote(self, block: Block) -> None:
        self.r_vote = block.round

    def stop_voting_below(self, round_number: int) -> None:
        """"Stops voting for round < r" on round entry / timeout."""
        self.r_vote = max(self.r_vote, round_number - 1)

    def stop_voting_for(self, round_number: int) -> None:
        """"Stops voting for round r" when its timer expires."""
        self.r_vote = max(self.r_vote, round_number)

    # ------------------------------------------------------------------
    # Locking (the Lock step)
    # ------------------------------------------------------------------
    def update_lock(self, qc_rank: Rank, parent_rank: Optional[Rank]) -> None:
        """2-chain lock (lock the parent's rank) or Section 4's 1-chain lock.

        ``qc_rank`` is the effective rank of the certificate just seen,
        ``parent_rank`` the effective rank of the certificate embedded in
        the block it certifies (None if we don't hold the block yet — the
        caller re-runs the lock update when the block arrives).
        """
        if self.config.one_chain_lock:
            self.rank_lock = max(self.rank_lock, qc_rank)
        elif parent_rank is not None:
            self.rank_lock = max(self.rank_lock, parent_rank)

    # ------------------------------------------------------------------
    # Fallback voting (the Fallback Vote step)
    # ------------------------------------------------------------------
    def reset_fallback_votes(self, view: int) -> None:
        """Enter Fallback: fresh r̄_vote / h̄_vote maps for this view."""
        self._fallback_votes = FallbackVoteState(view=view)

    @property
    def fallback_votes(self) -> Optional[FallbackVoteState]:
        return self._fallback_votes

    def may_vote_fallback(
        self,
        fblock: FallbackBlock,
        v_cur: int,
        fallback_mode: bool,
        parent_rank: Rank,
        parent_height: Optional[int],
    ) -> bool:
        """The Fallback Vote rule for any height.

        ``parent_rank`` is the effective rank of the embedded certificate;
        ``parent_height`` the embedded f-QC's height for heights >= 2 (None
        for height 1, whose parent is a regular/endorsed certificate).
        """
        if not fallback_mode or self._fallback_votes is None:
            return False
        if self._fallback_votes.view != v_cur or fblock.view != v_cur:
            return False
        votes = self._fallback_votes
        if fblock.height <= votes.voted_height(fblock.proposer):
            return False
        if fblock.height == 1:
            if parent_height is not None:
                return False  # height-1 must extend a regular/endorsed cert
            if parent_rank < self.rank_lock:
                return False
            if fblock.round != parent_rank.round + 1:
                return False
        else:
            if parent_height is None or fblock.height != parent_height + 1:
                return False
            if fblock.round != parent_rank.round + 1:
                return False
            if fblock.round <= votes.voted_round(fblock.proposer):
                return False
        return True

    def record_fallback_vote(self, fblock: FallbackBlock) -> None:
        if self._fallback_votes is None:
            raise RuntimeError("fallback vote recorded outside a fallback")
        self._fallback_votes.record(fblock.proposer, fblock.round, fblock.height)

    def adopt_leader_votes(self, leader: int) -> None:
        """Exit Fallback: ``r_vote ← r̄_vote[L]`` (consistency with the
        endorsed chain we may have voted for)."""
        if self._fallback_votes is not None:
            self.r_vote = self._fallback_votes.voted_round(leader)
