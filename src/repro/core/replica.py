"""The replica state machine.

One :class:`Replica` runs the steady-state protocol (Propose / Vote / Lock /
Advance Round / Commit) and delegates view-change duties to an engine chosen
by the configured variant:

- :class:`~repro.core.fallback.FallbackEngine` — the paper's asynchronous
  view-change (Figures 2-4),
- :class:`~repro.core.pacemaker.PacemakerEngine` — the original DiemBFT
  quadratic pacemaker (Figure 1), used by the partially synchronous baseline.

The ALWAYS_FALLBACK variant (VABA/ACE-style quadratic baseline) reuses the
fallback engine but never runs the fast path: every view starts with an
immediate timeout.

Transport contract: a replica only ever calls ``network.send`` /
``network.multicast`` and receives via :meth:`Process.deliver`.  It assumes
the paper's reliable authenticated links.  When the simulation withdraws
that assumption (a :class:`~repro.net.loss.LossModel` is installed), the
:class:`~repro.net.reliable.ReliableNetwork` channel layer restores
exactly-once-per-retransmission-window delivery *underneath* this class —
replica logic is byte-for-byte independent of the transport in play.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.commit import find_commit_target, parent_rank_of
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.context import CryptoContext
from repro.core.leader import LeaderSchedule
from repro.core.quorum import ShareQuorumTracker
from repro.core.safety import SafetyRules
from repro.core.validation import (
    AnyCert,
    effective_rank,
    endorse_if_elected,
    verify_parent_cert,
)
from repro.ledger.blockstore import BlockStore
from repro.ledger.ledger import CommitRecord, Ledger, NullStateMachine, StateMachine
from repro.mempool.mempool import Mempool
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler
from repro.types.blocks import AnyBlock, Block
from repro.types.certificates import (
    CoinQC,
    EndorsedFallbackQC,
    FallbackQC,
    ParentCert,
    QC,
    genesis_qc,
    max_cert,
)
from repro.types.transactions import Batch
from repro.crypto.signatures import SignatureError
from repro.crypto.threshold import ThresholdSignatureShare
from repro.client.client import ClientReply, ClientRequest
from repro.types.messages import (
    BlockRequest,
    BlockResponse,
    ChainRequest,
    ChainResponse,
    CoinQCMessage,
    CoinShareMessage,
    FallbackProposal,
    FallbackQCMessage,
    FallbackTCMessage,
    FallbackTimeout,
    FallbackVote,
    PacemakerTCMessage,
    PacemakerTimeout,
    Proposal,
    Vote,
)

ROUND_TIMER = "round"
SYNC_TIMER_PREFIX = "sync:"


class ReplicaObserver:
    """No-op observer; the metrics layer implements these hooks."""

    def on_commit(self, replica: int, record: CommitRecord, now: float) -> None:
        pass

    def on_round_entered(self, replica: int, round_number: int, now: float) -> None:
        pass

    def on_state_reset(self, replica: int, now: float) -> None:
        pass

    def on_timeout(self, replica: int, view: int, round_number: int, now: float) -> None:
        pass

    def on_fallback_entered(self, replica: int, view: int, now: float) -> None:
        pass

    def on_fallback_exited(self, replica: int, view: int, leader: int, now: float) -> None:
        pass

    def on_proposal(self, replica: int, block: Block, now: float) -> None:
        pass


class Replica(Process):
    """An honest replica."""

    def __init__(
        self,
        replica_id: int,
        config: ProtocolConfig,
        crypto: CryptoContext,
        network: Network,
        scheduler: Scheduler,
        mempool: Optional[Mempool] = None,
        state_machine: Optional[StateMachine] = None,
        observer: Optional[ReplicaObserver] = None,
    ) -> None:
        super().__init__(replica_id, scheduler)
        if crypto.replica != replica_id:
            raise ValueError("crypto context belongs to a different replica")
        self.config = config
        self.crypto = crypto
        self.network = network
        self.observer = observer or ReplicaObserver()
        self.schedule = LeaderSchedule(config.n, config.leader_rotation_interval)
        self.mempool = mempool if mempool is not None else Mempool(config.batch_size)
        # Adaptive proposal batching (opt-in): with the flag off this stays
        # None and the flag-off hot path is a single identity check — no
        # traffic objects exist, so recorded fingerprints are unaffected.
        self._batch_controller = None
        if config.adaptive_batching:
            from repro.traffic.batching import AdaptiveBatchController
            from repro.traffic.envelope import TrafficEnvelope

            envelope = TrafficEnvelope()
            self.mempool.attach_envelope(envelope, lambda: self.now)
            self._batch_controller = AdaptiveBatchController(
                min_batch=config.adaptive_min_batch,
                max_batch=config.adaptive_max_batch,
                start=config.batch_size,
                envelope=envelope.cluster,
            )
        self.store = BlockStore()
        self.ledger = Ledger(self.store, state_machine or NullStateMachine())
        self.safety = SafetyRules(config)

        # Core protocol state (Figure 1 initialization).
        self.r_cur = 1
        self.v_cur = 0
        self.qc_high: ParentCert = genesis_qc(self.store.genesis.id)
        self.fallback_mode = False
        self.fallbacks_entered = 0

        self._deferred_share_verify = config.deferred_share_verify

        # Vote aggregation (as the next round's leader), keyed
        # ("vote", block_id, round, view); incremental trackers give O(1)
        # quorum checks instead of per-arrival bucket re-scans.
        self._vote_shares: dict[
            tuple[str, str, int, int],
            ShareQuorumTracker[ThresholdSignatureShare],
        ] = {}
        self._formed_qcs: set[tuple[str, str, int, int]] = set()

        # Proposals made, keyed (view, round): the leader proposes once.
        self._proposed: set[tuple[int, int]] = set()

        # Certificates whose blocks we have not received yet.
        self._pending_certs: list[AnyCert] = []
        self._requested_blocks: set[str] = set()

        # Client transactions awaiting a commit reply: tx_id -> client id.
        self._tx_origin: dict[str, int] = {}

        # In-flight block sync: block_id -> (cert, attempts so far, deep gap).
        self._sync_attempts: dict[str, tuple[AnyCert, int, bool]] = {}

        # View-change engine (imported here to avoid module cycles).
        from repro.core.fallback import FallbackEngine
        from repro.core.pacemaker import PacemakerEngine

        self.fallback: Optional[FallbackEngine] = None
        self.pacemaker: Optional[PacemakerEngine] = None
        if config.uses_fallback:
            self.fallback = FallbackEngine(self)
        else:
            self.pacemaker = PacemakerEngine(self)

        # Exact-type message dispatch (hot path at large n; subclassed
        # message types fall through to the isinstance chain).  Bound
        # methods resolve through the MRO, so subclass handler overrides
        # are honored; engine routing reads self.fallback/self.pacemaker
        # at call time because fault harnesses swap engines after init.
        self._msg_dispatch: dict[type, Callable[..., None]] = {
            ClientRequest: self.handle_client_request,
            Proposal: self.handle_proposal,
            Vote: self.handle_vote,
            BlockRequest: self.handle_block_request,
            BlockResponse: self.handle_block_response,
            ChainRequest: self.handle_chain_request,
            ChainResponse: self.handle_chain_response,
            PacemakerTimeout: self._dispatch_pacemaker,
            PacemakerTCMessage: self._dispatch_pacemaker,
            FallbackTimeout: self._dispatch_fallback,
            FallbackTCMessage: self._dispatch_fallback,
            FallbackProposal: self._dispatch_fallback,
            FallbackVote: self._dispatch_fallback,
            FallbackQCMessage: self._dispatch_fallback,
            CoinShareMessage: self._dispatch_fallback,
            CoinQCMessage: self._dispatch_fallback,
        }

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def quorum(self) -> int:
        return self.config.quorum_size

    @property
    def coin_qcs(self) -> dict[int, CoinQC]:
        """View -> CoinQC map (empty for the baseline pacemaker)."""
        if self.fallback is not None:
            return self.fallback.coin_qcs
        return {}

    def current_leader(self) -> int:
        return self.schedule.leader(self.r_cur)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if self.config.variant == ProtocolVariant.ALWAYS_FALLBACK:
            assert self.fallback is not None
            self.fallback.force_timeout()
            return
        self._arm_round_timer()
        self.maybe_propose()

    def on_timer(self, name: str) -> None:
        if name.startswith(SYNC_TIMER_PREFIX):
            self._retry_block_request(name[len(SYNC_TIMER_PREFIX):])
            return
        if name != ROUND_TIMER:
            return
        self.observer.on_timeout(self.process_id, self.v_cur, self.r_cur, self.now)
        if self.fallback is not None:
            self.fallback.on_local_timeout()
        elif self.pacemaker is not None:
            self.pacemaker.on_local_timeout()

    def _dispatch_pacemaker(self, sender: int, message: object) -> None:
        if self.pacemaker is not None:
            self.pacemaker.handle(sender, message)

    def _dispatch_fallback(self, sender: int, message: object) -> None:
        if self.fallback is not None:
            self.fallback.handle(sender, message)

    def on_message(self, sender: int, message: object) -> None:
        handler = self._msg_dispatch.get(type(message))
        if handler is not None:
            handler(sender, message)
            return
        if isinstance(message, ClientRequest):
            self.handle_client_request(sender, message)
        elif isinstance(message, Proposal):
            self.handle_proposal(sender, message)
        elif isinstance(message, Vote):
            self.handle_vote(sender, message)
        elif isinstance(message, BlockRequest):
            self.handle_block_request(sender, message)
        elif isinstance(message, BlockResponse):
            self.handle_block_response(sender, message)
        elif isinstance(message, ChainRequest):
            self.handle_chain_request(sender, message)
        elif isinstance(message, ChainResponse):
            self.handle_chain_response(sender, message)
        elif isinstance(message, (PacemakerTimeout, PacemakerTCMessage)):
            if self.pacemaker is not None:
                self.pacemaker.handle(sender, message)
        elif isinstance(
            message,
            (
                FallbackTimeout,
                FallbackTCMessage,
                FallbackProposal,
                FallbackVote,
                FallbackQCMessage,
                CoinShareMessage,
                CoinQCMessage,
            ),
        ):
            if self.fallback is not None:
                self.fallback.handle(sender, message)
        # Unknown message types are dropped (Byzantine noise).

    # ------------------------------------------------------------------
    # Steady state: Propose
    # ------------------------------------------------------------------
    def maybe_propose(self) -> None:
        """Propose for the current round if we are its leader (once)."""
        if self.config.variant == ProtocolVariant.ALWAYS_FALLBACK:
            return
        if self.fallback_mode:
            return
        if self.schedule.leader(self.r_cur) != self.process_id:
            return
        key = (self.v_cur, self.r_cur)
        if key in self._proposed:
            return
        self._proposed.add(key)
        if self._batch_controller is not None:
            self.mempool.batch_size = self._batch_controller.tune(
                len(self.mempool), self.now
            )
        block = Block(
            qc=self.qc_high,
            round=self.r_cur,
            view=self.v_cur,
            batch=self.next_valid_batch(),
            author=self.process_id,
        )
        self.store.add(block)
        self.observer.on_proposal(self.process_id, block, self.now)
        self.network.multicast(self.process_id, Proposal(block))

    # ------------------------------------------------------------------
    # Steady state: Vote
    # ------------------------------------------------------------------
    def handle_proposal(self, sender: int, message: Proposal) -> None:
        block = message.block
        if block.round < 1:
            return  # malformed: protocol rounds start at 1
        if block.author != sender:
            return  # forged authorship
        if self.schedule.leader(block.round) != sender:
            return  # not the designated leader for that round
        if block.qc is None or not verify_parent_cert(self.crypto, block.qc):
            return
        self.store.add(block)
        self._retry_pending_certs()
        # Lock step: "upon seeing a valid qc ... contained in proposal".
        self.process_certificate(block.qc)
        if not self.batch_valid(block.batch):
            return  # external validity: never vote for invalid transactions
        parent_rank = effective_rank(block.qc, self.coin_qcs)
        if self.safety.may_vote_regular(
            block, self.r_cur, self.v_cur, self.fallback_mode, parent_rank
        ):
            self.safety.record_regular_vote(block)
            share = self.crypto.share(("vote", block.id, block.round, block.view))
            vote = Vote(block_id=block.id, round=block.round, view=block.view, share=share)
            self.network.send(
                self.process_id, self.schedule.leader(block.round + 1), vote
            )

    def handle_vote(self, sender: int, message: Vote) -> None:
        share = message.share
        if share.signer != sender:
            return
        payload = ("vote", message.block_id, message.round, message.view)
        if not self._deferred_share_verify and not self.crypto.verify_share(
            share, payload
        ):
            return
        key = payload
        if key in self._formed_qcs:
            return
        tracker = self._vote_shares.get(key)
        if tracker is None:
            tracker = ShareQuorumTracker(self.config.n, self.quorum)
            self._vote_shares[key] = tracker
        tracker.add(sender, share)
        if tracker.reached:
            try:
                signature = self.crypto.combine(tracker.shares(), payload)
            except SignatureError:
                # Deferred verification: evict invalid shares, keep waiting.
                tracker.evict_invalid(
                    lambda s: self.crypto.verify_share(s, payload)
                )
                return
            qc = QC(
                block_id=message.block_id,
                round=message.round,
                view=message.view,
                signature=signature,
            )
            self._formed_qcs.add(key)
            del self._vote_shares[key]
            self.process_certificate(qc)

    # ------------------------------------------------------------------
    # Lock / Advance Round / Commit
    # ------------------------------------------------------------------
    def process_certificate(self, cert: AnyCert) -> None:
        """The Lock step: runs on every valid certificate we see.

        Accepts regular QCs, endorsed f-QCs, and raw f-QCs (which only act
        here once their view's coin endorses them).
        """
        normalized = endorse_if_elected(cert, self.coin_qcs)
        if normalized is None:
            return  # unendorsed f-QC: fallback-internal only
        # qc_high <- max(qc_high, qc).  Updated before Advance Round so that
        # a leader proposing "upon entering round r" extends this very QC.
        self.qc_high = max_cert(self.qc_high, normalized)
        # rank_lock update (needs the certified block's own parent for the
        # 2-chain lock; re-run later if the block is missing).
        block = self.store.get(normalized.block_id)
        if block is None:
            self._note_missing_block(normalized)
            self.safety.update_lock(effective_rank(normalized, self.coin_qcs), None)
        else:
            self.safety.update_lock(
                effective_rank(normalized, self.coin_qcs),
                parent_rank_of(block, self.coin_qcs),
            )
        # Advance Round (may trigger our proposal for the new round).
        self.advance_round(normalized.round + 1)
        # Commit.
        self.try_commit(normalized)
        # A new round may make us the leader.
        self.maybe_propose()

    def advance_round(self, new_round: int) -> None:
        """``r_cur <- max(r_cur, qc.r + 1)`` plus round-entry duties."""
        if new_round <= self.r_cur:
            return
        self.r_cur = new_round
        self.safety.stop_voting_below(new_round)
        self.observer.on_round_entered(self.process_id, new_round, self.now)
        self._prune_vote_state()
        if not self.fallback_mode:
            self._arm_round_timer()
        if self.pacemaker is not None:
            self.pacemaker.on_round_entered(new_round)
        self.maybe_propose()

    def try_commit(self, cert: AnyCert) -> None:
        target = find_commit_target(
            self.store, cert, self.coin_qcs, self.config.commit_depth
        )
        if target is None or self.ledger.is_committed(target.id):
            return
        records = self.ledger.commit_through(target, self.now)
        for record in records:
            self.mempool.mark_committed(record.block.batch)
            self.observer.on_commit(self.process_id, record, self.now)
            self._reply_to_clients(record)

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def handle_client_request(self, sender: int, message: ClientRequest) -> None:
        transaction = message.transaction
        if self.ledger.is_committed_transaction(transaction.tx_id):
            # Retransmission of something already committed: answer directly.
            position, block_id = self.ledger.commit_location(transaction.tx_id)
            self.network.send(
                self.process_id,
                sender,
                ClientReply(
                    tx_id=transaction.tx_id,
                    position=position,
                    block_id=block_id,
                    replica=self.process_id,
                ),
            )
            return
        self._tx_origin[transaction.tx_id] = sender
        self.mempool.submit(transaction)

    def _reply_to_clients(self, record: CommitRecord) -> None:
        for transaction in record.block.batch:
            origin = self._tx_origin.pop(transaction.tx_id, None)
            if origin is not None:
                self.network.send(
                    self.process_id,
                    origin,
                    ClientReply(
                        tx_id=transaction.tx_id,
                        position=record.position,
                        block_id=record.block.id,
                        replica=self.process_id,
                    ),
                )

    # ------------------------------------------------------------------
    # Round timer
    # ------------------------------------------------------------------
    def _arm_round_timer(self) -> None:
        self.set_timer(
            ROUND_TIMER, self.config.timeout_for_view(self.fallbacks_entered)
        )

    def after_view_change(self) -> None:
        """Duties after exiting a fallback: timers and possibly proposing."""
        if self.config.variant == ProtocolVariant.ALWAYS_FALLBACK:
            assert self.fallback is not None
            self.fallback.force_timeout()
            return
        self._arm_round_timer()
        self.maybe_propose()

    # ------------------------------------------------------------------
    # Block synchronization (catch-up)
    # ------------------------------------------------------------------
    def _note_missing_block(self, cert: AnyCert, deep: bool = False) -> None:
        """Record a certified-but-missing block and start fetching it.

        ``deep=True`` marks gaps found while walking ancestry (recovery /
        long partitions): those go straight to range sync, since more of the
        chain is almost certainly missing below them.
        """
        self._pending_certs.append(cert)
        if not self.config.sync_missing_blocks:
            return
        block_id = cert.block_id
        if block_id in self._requested_blocks:
            return
        self._requested_blocks.add(block_id)
        self._sync_attempts[block_id] = (cert, 0, deep)
        self._send_block_request(cert, attempt=0, deep=deep)

    def _send_block_request(self, cert: AnyCert, attempt: int, deep: bool) -> None:
        """Ask a peer for a missing block, rotating peers across retries.

        The first attempt targets the block's likely author; later attempts
        (and the case where we *are* the author — e.g. our own pre-crash
        blocks) walk the other replicas round-robin.

        The common case — one missed proposal, parent already present — is
        served by a single-block :class:`BlockRequest`.  Deep gaps and
        retries escalate to :class:`ChainRequest` range sync: one round trip
        brings the block plus a chunk of its ancestry, so deep catch-up is
        O(chain / max_blocks) round trips.
        """
        block_id = cert.block_id
        target = (self._likely_holder(cert) + attempt) % self.config.n
        if target == self.process_id:
            target = (target + 1) % self.config.n
        if deep or attempt > 0:
            request: object = ChainRequest(block_id)
        else:
            request = BlockRequest(block_id)
        self.network.send(self.process_id, target, request)
        self.set_timer(SYNC_TIMER_PREFIX + block_id, self.config.round_timeout)

    def _retry_block_request(self, block_id: str) -> None:
        entry = self._sync_attempts.get(block_id)
        if entry is None or block_id in self.store:
            self._sync_attempts.pop(block_id, None)
            return
        cert, attempt, deep = entry
        self._sync_attempts[block_id] = (cert, attempt + 1, deep)
        self._send_block_request(cert, attempt + 1, deep)

    def _likely_holder(self, cert: AnyCert) -> int:
        """Who to ask for a missing certified block: its author."""
        if isinstance(cert, EndorsedFallbackQC):
            return cert.fqc.proposer
        if isinstance(cert, FallbackQC):
            return cert.proposer
        return self.schedule.leader(max(cert.round, 1))

    def handle_block_request(self, sender: int, message: BlockRequest) -> None:
        block = self.store.get(message.block_id)
        if block is not None:
            self.network.send(self.process_id, sender, BlockResponse(block))

    def handle_block_response(self, sender: int, message: BlockResponse) -> None:
        self._accept_synced_blocks([message.block])

    def handle_chain_request(self, sender: int, message: ChainRequest) -> None:
        head = self.store.get(message.block_id)
        if head is None:
            return
        limit = max(1, min(message.max_blocks, 128))
        blocks = [head]
        for ancestor in self.store.ancestors(head):
            if len(blocks) >= limit:
                break
            blocks.append(ancestor)
        self.network.send(self.process_id, sender, ChainResponse(blocks=tuple(blocks)))

    def handle_chain_response(self, sender: int, message: ChainResponse) -> None:
        self._accept_synced_blocks(message.blocks)

    def _accept_synced_blocks(self, blocks: Iterable[AnyBlock]) -> None:
        accepted = False
        for block in blocks:
            if isinstance(block, Block):
                if block.qc is not None and not verify_parent_cert(self.crypto, block.qc):
                    continue
            self.store.add(block)
            accepted = True
            self._sync_attempts.pop(block.id, None)
            self.cancel_timer(SYNC_TIMER_PREFIX + block.id)
        if accepted:
            self._retry_pending_certs()

    def _retry_pending_certs(self) -> None:
        if not self._pending_certs:
            return
        pending, self._pending_certs = self._pending_certs, []
        progressed = False
        for cert in pending:
            if cert.block_id in self.store:
                progressed = True
                block = self.store.require(cert.block_id)
                self.safety.update_lock(
                    effective_rank(cert, self.coin_qcs),
                    parent_rank_of(block, self.coin_qcs),
                )
                self.try_commit(cert)
                # The chain below may still be incomplete (deep catch-up):
                # chase the deepest missing link, not just the parent.
                gap_cert = self._deepest_missing_link(block)
                if gap_cert is not None:
                    self._note_missing_block(gap_cert, deep=True)
            else:
                self._pending_certs.append(cert)
        if progressed:
            # Catch-up may have just completed the chain below blocks whose
            # commit check failed earlier; re-run it from the highest cert.
            self.try_commit(self.qc_high)

    def _deepest_missing_link(self, block: AnyBlock) -> Optional[AnyCert]:
        """Walk ancestors from ``block``; return the certificate of the
        first missing ancestor, or None if the chain reaches genesis or the
        committed prefix."""
        current = block
        while True:
            if current.qc is None:
                return None  # genesis reached: chain complete
            parent = self.store.get(current.qc.block_id)
            if parent is None:
                return current.qc
            if self.ledger.is_committed(parent.id):
                return None  # connected to the committed prefix
            current = parent

    # ------------------------------------------------------------------
    # External validity (validated BFT SMR)
    # ------------------------------------------------------------------
    def batch_valid(self, batch: Batch) -> bool:
        """All transactions in the batch satisfy the validity predicate."""
        predicate = self.config.validity_predicate
        if predicate is None:
            return True
        return all(predicate(tx) for tx in batch)

    def next_valid_batch(self) -> Batch:
        """Next mempool batch with externally invalid transactions dropped
        (both from the batch and, permanently, from the pool)."""
        predicate = self.config.validity_predicate
        if predicate is None:
            return self.mempool.next_batch()
        while True:
            batch = self.mempool.next_batch()
            invalid = [tx for tx in batch if not predicate(tx)]
            if not invalid:
                return batch
            self.mempool.mark_committed(invalid)  # drop, never propose

    def _prune_vote_state(self) -> None:
        """Drop vote accumulators for long-past rounds (memory hygiene)."""
        horizon = self.r_cur - 2
        stale = [key for key in self._vote_shares if key[2] < horizon]
        for key in stale:
            del self._vote_shares[key]
