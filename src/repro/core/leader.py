"""Steady-state leader schedule.

The paper's "Rules for Leader Rotation": the predefined leader sequence
rotates once every 4 rounds (``L_{4k+1} .. L_{4k+4}`` are the same replica),
so an honest leader has enough consecutive rounds to complete a 3-chain and
commit.  Rotation interval and cluster size are configurable.
"""

from __future__ import annotations


class LeaderSchedule:
    """Round-robin leader assignment over rounds 1, 2, 3, ...

    ``leader(r) = ((r - 1) // interval) mod n`` — rounds are 1-indexed, so
    rounds 1..interval belong to replica 0, the next ``interval`` rounds to
    replica 1, and so on.
    """

    def __init__(self, n: int, rotation_interval: int = 4) -> None:
        if n < 1:
            raise ValueError("need at least one replica")
        if rotation_interval < 1:
            raise ValueError("rotation interval must be >= 1")
        self.n = n
        self.rotation_interval = rotation_interval

    def leader(self, round_number: int) -> int:
        """The designated leader ``L_r`` of a round (rounds start at 1)."""
        if round_number < 1:
            raise ValueError(f"rounds are 1-indexed, got {round_number}")
        return ((round_number - 1) // self.rotation_interval) % self.n

    def is_leader(self, replica: int, round_number: int) -> bool:
        return self.leader(round_number) == replica

    def rounds_led_by(self, replica: int, start: int, end: int) -> list[int]:
        """Rounds in [start, end] led by ``replica`` (inclusive bounds)."""
        return [r for r in range(start, end + 1) if self.leader(r) == replica]

    def next_rotation(self, round_number: int) -> int:
        """First round after ``round_number`` with a different leader."""
        current = self.leader(round_number)
        candidate = round_number + 1
        while self.leader(candidate) == current:
            candidate += 1
        return candidate
