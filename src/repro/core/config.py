"""Protocol configuration.

``ProtocolConfig`` fixes everything a replica needs to know at setup time:
cluster size, fault budget, timeouts, which protocol variant runs, and the
variant's derived parameters (commit-rule depth, lock rule, fallback chain
height, chain-adoption optimization).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

#: External-validity predicate over transactions (validated BFT SMR).
ValidityPredicate = Callable[["object"], bool]


class ProtocolVariant(enum.Enum):
    """Which assembled protocol a replica runs."""

    #: The paper's main protocol: DiemBFT + async fallback, 3-chain commit.
    FALLBACK_3CHAIN = "fallback-3chain"
    #: Section 4: 1-chain lock, 2-chain commit, 2-block fallback chains.
    FALLBACK_2CHAIN = "fallback-2chain"
    #: Baseline: DiemBFT with its original quadratic pacemaker (Figure 1).
    DIEMBFT = "diembft"
    #: Baseline: always-quadratic asynchronous protocol (VABA/ACE stand-in):
    #: every decision goes through the fallback path, no fast path.
    ALWAYS_FALLBACK = "always-fallback"


@dataclass(frozen=True)
class ProtocolConfig:
    """Cluster-wide protocol parameters.

    Attributes:
        n: number of replicas; must satisfy n = 3f+1 for some f >= 0.
        variant: which protocol to assemble.
        round_timeout: base timer duration for a round (simulated time).
        timeout_multiplier: per-entered-view exponential backoff factor
            applied to the round timeout (1.0 = no backoff).
        batch_size: max transactions pulled from the mempool per block.
        leader_rotation_interval: rounds per steady-state leader (the paper
            rotates every 4 rounds so an honest leader can finish a 3-chain).
        fallback_adoption: enable the paper's "Optimization in Practice"
            (build on / adopt other replicas' certified f-blocks).  ``None``
            picks the variant default: off for 3-chain, on for 2-chain
            (Section 4 needs it for liveness under the 1-chain lock).
        sync_missing_blocks: request blocks we saw certified but never
            received (catch-up); keep on except in complexity microbenches.
        deferred_share_verify: skip eager per-arrival verification of
            threshold/coin shares and validate only at combine time (the
            batched mode: one pooled pass over the quorum instead of one
            hash per arriving duplicate).  Invalid shares surface as a
            failed combine, which evicts them and resumes waiting —
            liveness is unchanged because 2f+1 honest shares always
            combine.  Off by default: eager mode keeps recorded benchmark
            fingerprints byte-identical.
        validity_predicate: optional external-validity predicate (the
            paper's validated BFT SMR): honest replicas propose only valid
            transactions and refuse to vote for blocks containing invalid
            ones, so only externally valid transactions ever commit.
        adaptive_batching: consult an
            :class:`repro.traffic.batching.AdaptiveBatchController` before
            each proposal instead of using the fixed ``batch_size``.  Off
            by default: the flag-off path constructs no traffic objects and
            keeps recorded benchmark fingerprints byte-identical.
        adaptive_min_batch / adaptive_max_batch: the controller's batch-size
            bounds (only read when ``adaptive_batching`` is on).
    """

    n: int = 4
    variant: ProtocolVariant = ProtocolVariant.FALLBACK_3CHAIN
    round_timeout: float = 5.0
    timeout_multiplier: float = 1.0
    batch_size: int = 10
    leader_rotation_interval: int = 4
    fallback_adoption: Optional[bool] = None
    sync_missing_blocks: bool = True
    deferred_share_verify: bool = False
    validity_predicate: Optional[ValidityPredicate] = None
    adaptive_batching: bool = False
    adaptive_min_batch: int = 1
    adaptive_max_batch: int = 160

    def __post_init__(self) -> None:
        if self.n < 4 or (self.n - 1) % 3 != 0:
            raise ValueError(
                f"n must be 3f+1 for some f >= 1, got n={self.n}"
            )
        if self.round_timeout <= 0:
            raise ValueError("round_timeout must be positive")
        if self.timeout_multiplier < 1.0:
            raise ValueError("timeout_multiplier must be >= 1.0")
        if self.leader_rotation_interval < 1:
            raise ValueError("leader_rotation_interval must be >= 1")
        if self.adaptive_min_batch < 1:
            raise ValueError("adaptive_min_batch must be >= 1")
        if self.adaptive_max_batch < self.adaptive_min_batch:
            raise ValueError("adaptive_max_batch must be >= adaptive_min_batch")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def f(self) -> int:
        """Maximum Byzantine replicas tolerated."""
        return (self.n - 1) // 3

    @property
    def quorum_size(self) -> int:
        """2f+1 — certificate threshold."""
        return 2 * self.f + 1

    @property
    def coin_threshold(self) -> int:
        """f+1 — coin reveal threshold."""
        return self.f + 1

    @property
    def uses_fallback(self) -> bool:
        return self.variant in (
            ProtocolVariant.FALLBACK_3CHAIN,
            ProtocolVariant.FALLBACK_2CHAIN,
            ProtocolVariant.ALWAYS_FALLBACK,
        )

    @property
    def commit_depth(self) -> int:
        """Adjacent certified blocks needed to commit (3-chain vs 2-chain)."""
        if self.variant == ProtocolVariant.FALLBACK_2CHAIN:
            return 2
        return 3

    @property
    def one_chain_lock(self) -> bool:
        """Section 4 locks on the QC itself instead of its parent."""
        return self.variant == ProtocolVariant.FALLBACK_2CHAIN

    @property
    def fallback_top_height(self) -> int:
        """F-chain length: 3 for the main protocol, 2 for Section 4."""
        if self.variant == ProtocolVariant.FALLBACK_2CHAIN:
            return 2
        return 3

    @property
    def adoption_enabled(self) -> bool:
        if self.fallback_adoption is not None:
            return self.fallback_adoption
        return self.variant == ProtocolVariant.FALLBACK_2CHAIN

    @property
    def strict_round_chaining(self) -> bool:
        """Fallback variants require r == qc.r + 1 when voting (Figure 2).

        The original DiemBFT pacemaker skips rounds via TCs, so its vote
        rule does not require consecutive rounds.
        """
        return self.uses_fallback

    def timeout_for_view(self, entered_fallbacks: int) -> float:
        """Round timeout with exponential backoff over entered fallbacks."""
        return self.round_timeout * (self.timeout_multiplier ** entered_fallbacks)
