"""The original DiemBFT pacemaker (Figure 1) — the quadratic baseline.

Round timeouts are per-round: a timer expiry stops voting for the round and
multicasts a timeout message carrying a threshold share over the round
number and the sender's ``qc_high``; 2f+1 shares form a round-TC, which
advances the round.  Under asynchrony the leader never assembles votes, so
rounds advance forever via TCs and nothing commits — the liveness failure
the paper's fallback removes.

One production detail not spelled out in Figure 1 is implemented here (it
matches DiemBFT/LibraBFT deployments and is required for post-GST liveness):
**timeout joining** — a replica that receives a valid timeout message for a
round at or above its current round echoes its own timeout share for that
round.  Without it, replicas whose rounds drifted apart pre-GST can hold
timeout shares for different rounds and never assemble any TC.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.quorum import ShareQuorumTracker
from repro.core.validation import verify_parent_cert, verify_timeout_cert
from repro.crypto.signatures import SignatureError
from repro.crypto.threshold import ThresholdSignatureShare
from repro.types.certificates import TimeoutCertificate
from repro.types.messages import PacemakerTCMessage, PacemakerTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import Replica


class PacemakerEngine:
    """Per-replica state and handlers for the baseline pacemaker."""

    def __init__(self, replica: "Replica") -> None:
        self.replica = replica
        self.crypto = replica.crypto
        self._deferred = replica.config.deferred_share_verify
        # Round -> incremental share tracker (O(1) quorum checks).
        self._timeout_shares: dict[
            int, ShareQuorumTracker[ThresholdSignatureShare]
        ] = {}
        self._timeout_sent_rounds: set[int] = set()
        self._tcs: dict[int, TimeoutCertificate] = {}

    # ------------------------------------------------------------------
    # Timer and Timeout
    # ------------------------------------------------------------------
    def on_local_timeout(self) -> None:
        round_number = self.replica.r_cur
        # "Stops voting for round r."
        self.replica.safety.stop_voting_for(round_number)
        self._send_timeout(round_number)

    def _send_timeout(self, round_number: int) -> None:
        if round_number in self._timeout_sent_rounds:
            return
        self._timeout_sent_rounds.add(round_number)
        share = self.crypto.share(("timeout", round_number))
        message = PacemakerTimeout(
            round=round_number, share=share, qc_high=self.replica.qc_high
        )
        self.replica.network.multicast(self.replica.process_id, message)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, sender: int, message: object) -> None:
        if isinstance(message, PacemakerTimeout):
            self.handle_timeout(sender, message)
        elif isinstance(message, PacemakerTCMessage):
            self.handle_tc(sender, message)

    def handle_timeout(self, sender: int, message: PacemakerTimeout) -> None:
        replica = self.replica
        share = message.share
        if share.signer != sender:
            return
        if not self._deferred and not self.crypto.verify_share(
            share, ("timeout", message.round)
        ):
            return
        if not verify_parent_cert(self.crypto, message.qc_high):
            return
        # Lock on the embedded certificate (helps slow replicas catch up).
        replica.process_certificate(message.qc_high)
        if message.round < replica.r_cur - 1:
            return  # too stale to matter for round advancement
        tracker = self._timeout_shares.get(message.round)
        if tracker is None:
            tracker = ShareQuorumTracker(replica.config.n, replica.quorum)
            self._timeout_shares[message.round] = tracker
        tracker.add(sender, share)
        # Timeout joining (see module docstring).
        if message.round >= replica.r_cur:
            self._send_timeout(message.round)
        if tracker.reached and message.round not in self._tcs:
            payload = ("timeout", message.round)
            try:
                signature = self.crypto.combine(tracker.shares(), payload)
            except SignatureError:
                # Deferred verification: evict the invalid shares and keep
                # waiting for an honest quorum.
                tracker.evict_invalid(
                    lambda s: self.crypto.verify_share(s, payload)
                )
                return
            tc = TimeoutCertificate(round=message.round, signature=signature)
            self._tcs[message.round] = tc
            self._advance_via_tc(tc)

    def handle_tc(self, sender: int, message: PacemakerTCMessage) -> None:
        if not verify_timeout_cert(self.crypto, message.tc):
            return
        if not verify_parent_cert(self.crypto, message.qc_high):
            return
        self.replica.process_certificate(message.qc_high)
        self._tcs.setdefault(message.tc.round, message.tc)
        self._advance_via_tc(message.tc)

    def _advance_via_tc(self, tc: TimeoutCertificate) -> None:
        """Advance Round via a TC: ``r_cur <- max(r_cur, tc.round + 1)``."""
        self.replica.advance_round(tc.round + 1)

    def on_round_entered(self, round_number: int) -> None:
        """"Upon entering round r, the replica sends the round-(r-1) tc to
        L_r" — only meaningful when the entry came from a TC."""
        tc = self._tcs.get(round_number - 1)
        if tc is None:
            return
        leader = self.replica.schedule.leader(round_number)
        if leader == self.replica.process_id:
            return  # we are the leader; nothing to forward
        self.replica.network.send(
            self.replica.process_id,
            leader,
            PacemakerTCMessage(tc=tc, qc_high=self.replica.qc_high),
        )
