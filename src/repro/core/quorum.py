"""Incremental quorum trackers — O(1) threshold checks on the hot path.

The engines in :mod:`repro.core.replica`, :mod:`repro.core.fallback` and
:mod:`repro.core.pacemaker` aggregate threshold shares (votes, timeouts,
coin shares) as ``dict[signer, share]`` buckets and re-check ``len(bucket)``
on every arrival.  At n=4 that is noise; at n=256 the buckets, their hash
probes and the per-view dict-of-dict churn show up directly in the
profile.  This module replaces them with dense, ``__slots__``-ed state
indexed by replica id:

- :class:`ShareQuorumTracker` — a fixed-size array of shares plus a count,
  keep-first insertion, constant-time threshold check.  Keep-first equals
  the dicts' last-write-wins for every share that passed verification,
  because share signing is deterministic: a signer has exactly one valid
  share per payload, so two verified inserts under one signer carry equal
  shares.
- :class:`SignerSet` — an integer bitmask of announcing identities
  (chain-completion announcements in Figure 2/4 count distinct signers).
- :class:`FallbackViewState` — one view's whole fallback working set
  (timeout shares, coin shares, completion announcements, own chain,
  f-QCs) in dense arrays, replacing five parallel per-view dicts.

All trigger points are externally identical to the dict-based buckets —
``tests/core/test_quorum_properties.py`` drives arbitrary interleavings
(duplicates, equivocations, out-of-range signers) against a naive re-scan
oracle to prove it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generic, Iterator, Optional, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.crypto.coin import CoinShare
    from repro.crypto.threshold import ThresholdSignatureShare
    from repro.types.blocks import FallbackBlock
    from repro.types.certificates import FallbackQC, FallbackTC

S = TypeVar("S")


class ShareQuorumTracker(Generic[S]):
    """Dense share accumulator with a count-on-insert threshold check.

    Shares are stored in a fixed array indexed by signer id; ``count``
    tracks distinct signers seen, so the quorum test is an integer compare
    instead of a ``len()`` over a rebuilt bucket.
    """

    __slots__ = ("n", "threshold", "count", "_shares")

    def __init__(self, n: int, threshold: int) -> None:
        self.n = n
        self.threshold = threshold
        self.count = 0
        self._shares: list[Optional[S]] = [None] * n

    def add(self, signer: int, share: S) -> bool:
        """Insert keep-first; return True if the signer was new.

        Out-of-range signers are rejected (verified shares always carry a
        registered signer; in deferred-verify mode this bounds-checks
        Byzantine garbage before any array access).
        """
        if not 0 <= signer < self.n:
            return False
        if self._shares[signer] is not None:
            return False
        self._shares[signer] = share
        self.count += 1
        return True

    @property
    def reached(self) -> bool:
        """O(1): have we accumulated ``threshold`` distinct signers?"""
        return self.count >= self.threshold

    def __contains__(self, signer: int) -> bool:
        return 0 <= signer < self.n and self._shares[signer] is not None

    def __len__(self) -> int:
        return self.count

    def shares(self) -> list[S]:
        """All stored shares, in signer order (combine/reveal input)."""
        return [share for share in self._shares if share is not None]

    def signers(self) -> list[int]:
        return [
            signer
            for signer in range(self.n)
            if self._shares[signer] is not None
        ]

    def evict_invalid(self, is_valid: Callable[[S], bool]) -> int:
        """Drop every share failing ``is_valid``; return how many went.

        Deferred-verify recovery: after a combine raises, the invalid
        shares are evicted so honest arrivals can re-reach the threshold.
        """
        evicted = 0
        for signer in range(self.n):
            share = self._shares[signer]
            if share is not None and not is_valid(share):
                self._shares[signer] = None
                self.count -= 1
                evicted += 1
        return evicted


class SignerSet:
    """Distinct-identity accumulator as an integer bitmask."""

    __slots__ = ("_mask", "count")

    def __init__(self) -> None:
        self._mask = 0
        self.count = 0

    def add(self, signer: int) -> bool:
        """Insert; return True if the identity was new."""
        if signer < 0:
            return False
        bit = 1 << signer
        if self._mask & bit:
            return False
        self._mask |= bit
        self.count += 1
        return True

    def __contains__(self, signer: int) -> bool:
        return signer >= 0 and bool(self._mask & (1 << signer))

    def __len__(self) -> int:
        return self.count

    def members(self) -> list[int]:
        """All stored identities, ascending (introspection only)."""
        mask = self._mask
        result = []
        signer = 0
        while mask:
            if mask & 1:
                result.append(signer)
            mask >>= 1
            signer += 1
        return result


class FallbackViewState:
    """One view's fallback working set, dense-indexed by replica id.

    Replaces the per-view entries of five parallel dicts in
    :class:`~repro.core.fallback.FallbackEngine` (timeout shares, coin
    shares, completion announcements, own blocks/votes, max proposed
    height) plus the global ``(view, proposer, height)``-keyed f-QC dict.
    F-QCs live in one flat ``n * top_height`` array indexed
    ``proposer * top_height + (height - 1)``; heights outside
    ``[1, top_height]`` (only reachable from Byzantine proposers growing
    chains past the top) spill into a small overflow dict so recording
    them stays behavior-identical to the old dict.
    """

    __slots__ = (
        "n",
        "top_height",
        "timeouts",
        "coin_shares",
        "completed",
        "max_proposed_height",
        "ftc",
        "own_blocks",
        "own_votes",
        "_fqcs",
        "_extra_fqcs",
    )

    def __init__(self, n: int, quorum: int, coin_threshold: int, top_height: int) -> None:
        self.n = n
        self.top_height = top_height
        self.timeouts: ShareQuorumTracker["ThresholdSignatureShare"] = (
            ShareQuorumTracker(n, quorum)
        )
        self.coin_shares: ShareQuorumTracker["CoinShare"] = ShareQuorumTracker(
            n, coin_threshold
        )
        self.completed = SignerSet()
        self.max_proposed_height = 0
        self.ftc: Optional["FallbackTC"] = None
        #: Own f-chain, indexed by height (slot 0 unused).
        self.own_blocks: list[Optional["FallbackBlock"]] = [None] * (top_height + 1)
        #: Vote trackers for own blocks, indexed by height (slot 0 unused).
        self.own_votes: list[
            Optional[ShareQuorumTracker["ThresholdSignatureShare"]]
        ] = [None] * (top_height + 1)
        self._fqcs: list[Optional["FallbackQC"]] = [None] * (n * top_height)
        self._extra_fqcs: dict[tuple[int, int], "FallbackQC"] = {}

    # ------------------------------------------------------------------
    # F-QC storage
    # ------------------------------------------------------------------
    def _fqc_index(self, proposer: int, height: int) -> int:
        """Flat index, or -1 when (proposer, height) is out of dense range."""
        if 0 <= proposer < self.n and 1 <= height <= self.top_height:
            return proposer * self.top_height + (height - 1)
        return -1

    def fqc_get(self, proposer: int, height: int) -> Optional["FallbackQC"]:
        index = self._fqc_index(proposer, height)
        if index >= 0:
            return self._fqcs[index]
        return self._extra_fqcs.get((proposer, height))

    def fqc_set(self, proposer: int, height: int, fqc: "FallbackQC") -> bool:
        """Store keep-first; return True if the slot was empty."""
        index = self._fqc_index(proposer, height)
        if index >= 0:
            if self._fqcs[index] is not None:
                return False
            self._fqcs[index] = fqc
            return True
        key = (proposer, height)
        if key in self._extra_fqcs:
            return False
        self._extra_fqcs[key] = fqc
        return True

    def fqc_items(self) -> Iterator[tuple[tuple[int, int], "FallbackQC"]]:
        """All stored f-QCs as ((proposer, height), fqc) pairs."""
        top = self.top_height
        for index, fqc in enumerate(self._fqcs):
            if fqc is not None:
                yield (index // top, index % top + 1), fqc
        for key, extra in self._extra_fqcs.items():
            yield key, extra

    def fqc_count(self) -> int:
        dense = sum(1 for fqc in self._fqcs if fqc is not None)
        return dense + len(self._extra_fqcs)
