"""The asynchronous view-change protocol (Figures 2 and 4).

On a round timeout the replica enters *fallback mode*, multicasts a timeout
message carrying a threshold share over its current view number and its
``qc_high``; 2f+1 such shares form a fallback-TC.  Entering the fallback,
every replica builds its own fallback-chain of f-blocks (heights 1..3, or
1..2 for the Section 4 variant), each height certified by 2f+1 fallback
votes.  Once 2f+1 chains are complete, replicas reveal the common coin; the
elected replica's f-QCs become *endorsed* and are handled exactly like
regular QCs — committing the endorsed chain with probability ≥ 2/3 — and the
protocol re-enters the steady state in the next view.

The "Optimization in Practice" (chain adoption) is implemented behind
``config.adoption_enabled``: replicas extend the first certified f-block
they learn at each height instead of waiting for their own chain.  It is the
default for the 2-chain variant (Section 4 requires it for liveness under
the 1-chain lock) and also repairs a liveness corner of the 3-chain
protocol under Byzantine timeout racing (see DESIGN.md).

Hot-path organization: all per-view working state (timeout shares, coin
shares, completion announcements, own chain, f-QCs) lives in one dense
:class:`~repro.core.quorum.FallbackViewState` per view instead of parallel
per-view dicts, and share buckets are incremental
:class:`~repro.core.quorum.ShareQuorumTracker` arrays with O(1) threshold
checks.  With ``config.deferred_share_verify`` the per-arrival share hash
check is skipped and validation happens (pooled) at combine time; a failed
combine evicts the invalid shares and resumes waiting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.core.quorum import FallbackViewState, ShareQuorumTracker
from repro.core.validation import (
    effective_rank,
    verify_fallback_qc,
    verify_fallback_tc,
    verify_parent_cert,
)
from repro.crypto.coin import CoinShare
from repro.crypto.signatures import SignatureError
from repro.crypto.threshold import ThresholdSignatureShare
from repro.types.blocks import FallbackBlock
from repro.types.certificates import CoinQC, FallbackQC, FallbackTC
from repro.types.messages import (
    CoinQCMessage,
    CoinShareMessage,
    FallbackProposal,
    FallbackQCMessage,
    FallbackTCMessage,
    FallbackTimeout,
    FallbackVote,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import Replica


class FallbackEngine:
    """Per-replica state and handlers for the asynchronous fallback."""

    def __init__(self, replica: "Replica") -> None:
        self.replica = replica
        self.config = replica.config
        self.crypto = replica.crypto
        self.top_height = self.config.fallback_top_height
        self.n = self.config.n
        self._deferred = self.config.deferred_share_verify

        #: Per-view fallback working set (dense arrays; see
        #: :class:`~repro.core.quorum.FallbackViewState`).
        self._views: dict[int, FallbackViewState] = {}
        self._timeout_sent_views: set[int] = set()

        #: Highest view whose fallback this replica has entered (-1 = none).
        self.entered_view = -1
        #: Views whose coin-QC we have already acted upon (exited).
        self._exited_views: set[int] = set()

        #: View -> CoinQC (kept forever: endorsement checks on old blocks).
        self.coin_qcs: dict[int, CoinQC] = {}

        self._coin_share_sent: set[int] = set()
        self._coin_qc_forwarded: set[int] = set()

        # Type-keyed dispatch (exact types; subclasses fall through to the
        # isinstance chain in handle()).
        self._dispatch: dict[type, Callable[[int, object], None]] = {
            FallbackTimeout: self.handle_timeout,  # type: ignore[dict-item]
            FallbackTCMessage: self._handle_tc_message,  # type: ignore[dict-item]
            FallbackProposal: self.handle_proposal,  # type: ignore[dict-item]
            FallbackVote: self.handle_vote,  # type: ignore[dict-item]
            FallbackQCMessage: self.handle_fqc_message,  # type: ignore[dict-item]
            CoinShareMessage: self.handle_coin_share,  # type: ignore[dict-item]
            CoinQCMessage: self.handle_coin_qc,  # type: ignore[dict-item]
        }

    # ------------------------------------------------------------------
    # Per-view state
    # ------------------------------------------------------------------
    def _view_state(self, view: int) -> FallbackViewState:
        state = self._views.get(view)
        if state is None:
            state = FallbackViewState(
                self.n,
                self.replica.quorum,
                self.config.coin_threshold,
                self.top_height,
            )
            self._views[view] = state
        return state

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, sender: int, message: object) -> None:
        handler = self._dispatch.get(type(message))
        if handler is not None:
            handler(sender, message)
        elif isinstance(message, FallbackTimeout):
            self.handle_timeout(sender, message)
        elif isinstance(message, FallbackTCMessage):
            self.maybe_enter_fallback(message.ftc)
        elif isinstance(message, FallbackProposal):
            self.handle_proposal(sender, message)
        elif isinstance(message, FallbackVote):
            self.handle_vote(sender, message)
        elif isinstance(message, FallbackQCMessage):
            self.handle_fqc_message(sender, message)
        elif isinstance(message, CoinShareMessage):
            self.handle_coin_share(sender, message)
        elif isinstance(message, CoinQCMessage):
            self.handle_coin_qc(sender, message)

    def _handle_tc_message(self, sender: int, message: FallbackTCMessage) -> None:
        self.maybe_enter_fallback(message.ftc)

    # ------------------------------------------------------------------
    # Timer and Timeout
    # ------------------------------------------------------------------
    def on_local_timeout(self) -> None:
        """Round timer expired: go into fallback mode and shout timeout."""
        replica = self.replica
        replica.fallback_mode = True
        view = replica.v_cur
        if view in self._timeout_sent_views:
            return
        self._timeout_sent_views.add(view)
        share = self.crypto.share(("ftimeout", view))
        message = FallbackTimeout(view=view, share=share, qc_high=replica.qc_high)
        replica.network.multicast(replica.process_id, message)

    def force_timeout(self) -> None:
        """ALWAYS_FALLBACK baseline: skip the fast path entirely."""
        self.on_local_timeout()

    def handle_timeout(self, sender: int, message: FallbackTimeout) -> None:
        replica = self.replica
        share = message.share
        if share.signer != sender:
            return
        if not self._deferred and not self.crypto.verify_share(
            share, ("ftimeout", message.view)
        ):
            return
        if not verify_parent_cert(self.crypto, message.qc_high):
            return
        # "Upon receiving a valid timeout message, execute Lock."
        replica.process_certificate(message.qc_high)
        if message.view < replica.v_cur:
            return  # stale view: lock processed, share useless
        tracker = self._view_state(message.view).timeouts
        tracker.add(sender, share)
        if tracker.reached and self.entered_view < message.view:
            payload = ("ftimeout", message.view)
            try:
                signature = self.crypto.combine(tracker.shares(), payload)
            except SignatureError:
                # Deferred verification: a Byzantine share snuck into the
                # quorum — evict everything invalid and keep waiting.
                tracker.evict_invalid(
                    lambda s: self.crypto.verify_share(s, payload)
                )
                return
            ftc = FallbackTC(view=message.view, signature=signature)
            self.maybe_enter_fallback(ftc)

    # ------------------------------------------------------------------
    # Enter Fallback
    # ------------------------------------------------------------------
    def maybe_enter_fallback(self, ftc: FallbackTC) -> None:
        replica = self.replica
        if ftc.view < replica.v_cur or ftc.view <= self.entered_view:
            return
        if not verify_fallback_tc(self.crypto, ftc):
            return
        self._view_state(ftc.view).ftc = ftc
        replica.fallback_mode = True
        replica.v_cur = ftc.view
        self.entered_view = ftc.view
        replica.fallbacks_entered += 1
        replica.safety.reset_fallback_votes(ftc.view)
        replica.cancel_timer("round")
        replica.observer.on_fallback_entered(replica.process_id, ftc.view, replica.now)
        # Propose the height-1 f-block; the f-TC rides along (this is the
        # paper's "multicast tc̄ and a height-1 f-block" as one message).
        self._propose_height1(ftc)

    def _propose_height1(self, ftc: FallbackTC) -> None:
        replica = self.replica
        view = ftc.view
        block = FallbackBlock(
            qc=replica.qc_high,
            round=replica.qc_high.round + 1,
            view=view,
            height=1,
            proposer=replica.process_id,
            batch=replica.next_valid_batch(),
        )
        replica.store.add(block)
        state = self._view_state(view)
        state.own_blocks[1] = block
        if state.max_proposed_height < 1:
            state.max_proposed_height = 1
        replica.network.multicast(
            replica.process_id, FallbackProposal(fblock=block, ftc=ftc)
        )

    # ------------------------------------------------------------------
    # Fallback Vote
    # ------------------------------------------------------------------
    def handle_proposal(self, sender: int, message: FallbackProposal) -> None:
        replica = self.replica
        fblock = message.fblock
        if fblock.proposer != sender:
            return
        parent_height: Optional[int] = None
        if fblock.height == 1:
            if isinstance(fblock.qc, FallbackQC):
                return  # height 1 must extend a regular/endorsed certificate
            if not verify_parent_cert(self.crypto, fblock.qc):
                return
            if message.ftc is None or message.ftc.view != fblock.view:
                return
            # Receiving the f-TC is an Enter Fallback trigger.
            self.maybe_enter_fallback(message.ftc)
            # Lock on the embedded certificate.
            replica.process_certificate(fblock.qc)
        else:
            if not isinstance(fblock.qc, FallbackQC):
                return
            if fblock.qc.view != fblock.view:
                return
            if not verify_fallback_qc(self.crypto, fblock.qc):
                return
            self.record_fqc(fblock.qc)
        replica.store.add(fblock)
        if not replica.batch_valid(fblock.batch):
            return  # external validity: never vote for invalid transactions
        parent_rank = effective_rank(fblock.qc, self.coin_qcs)
        if isinstance(fblock.qc, FallbackQC):
            parent_height = fblock.qc.height
        if replica.safety.may_vote_fallback(
            fblock, replica.v_cur, replica.fallback_mode, parent_rank, parent_height
        ):
            replica.safety.record_fallback_vote(fblock)
            payload = (
                "fvote",
                fblock.id,
                fblock.round,
                fblock.view,
                fblock.height,
                fblock.proposer,
            )
            vote = FallbackVote(
                block_id=fblock.id,
                round=fblock.round,
                view=fblock.view,
                height=fblock.height,
                proposer=fblock.proposer,
                share=self.crypto.share(payload),
            )
            replica.network.send(replica.process_id, sender, vote)

    # ------------------------------------------------------------------
    # Fallback Propose (growing our chain)
    # ------------------------------------------------------------------
    def handle_vote(self, sender: int, message: FallbackVote) -> None:
        replica = self.replica
        if message.proposer != replica.process_id:
            return
        share = message.share
        if share.signer != sender:
            return
        state = self._views.get(message.view)
        if state is None or not 1 <= message.height <= self.top_height:
            return
        own = state.own_blocks[message.height]
        if own is None or own.id != message.block_id:
            return
        payload = (
            "fvote",
            message.block_id,
            message.round,
            message.view,
            message.height,
            message.proposer,
        )
        if not self._deferred and not self.crypto.verify_share(share, payload):
            return
        tracker = state.own_votes[message.height]
        if tracker is None:
            tracker = ShareQuorumTracker(self.n, replica.quorum)
            state.own_votes[message.height] = tracker
        tracker.add(sender, share)
        if not tracker.reached:
            return
        if state.fqc_get(message.proposer, message.height) is not None:
            return  # already certified
        try:
            signature = self.crypto.combine(tracker.shares(), payload)
        except SignatureError:
            if self._deferred:
                tracker.evict_invalid(
                    lambda s: self.crypto.verify_share(s, payload)
                )
            return
        fqc = FallbackQC(
            block_id=message.block_id,
            round=message.round,
            view=message.view,
            height=message.height,
            proposer=message.proposer,
            signature=signature,
        )
        self.record_fqc(fqc)
        self._continue_own_chain(fqc)

    def _continue_own_chain(self, fqc: FallbackQC) -> None:
        replica = self.replica
        if not replica.fallback_mode or fqc.view != replica.v_cur:
            return
        if fqc.height >= self.top_height:
            replica.network.multicast(replica.process_id, FallbackQCMessage(fqc=fqc))
            return
        self._propose_next_height(fqc)

    def _propose_next_height(self, parent_fqc: FallbackQC) -> None:
        """Extend ``parent_fqc`` with our f-block at the next height."""
        replica = self.replica
        view = parent_fqc.view
        height = parent_fqc.height + 1
        state = self._view_state(view)
        if state.max_proposed_height >= height:
            return
        block = FallbackBlock(
            qc=parent_fqc,
            round=parent_fqc.round + 1,
            view=view,
            height=height,
            proposer=replica.process_id,
            batch=replica.next_valid_batch(),
        )
        replica.store.add(block)
        state.own_blocks[height] = block
        state.max_proposed_height = height
        replica.network.multicast(replica.process_id, FallbackProposal(fblock=block))

    def record_fqc(self, fqc: FallbackQC) -> None:
        """Store an f-QC; feeds endorsement, adoption, and late commits."""
        if not self._view_state(fqc.view).fqc_set(fqc.proposer, fqc.height, fqc):
            return
        # If the view's coin already elected this proposer, the f-QC is
        # endorsed and acts as a regular QC.
        coin_qc = self.coin_qcs.get(fqc.view)
        if coin_qc is not None and coin_qc.leader == fqc.proposer:
            self.replica.process_certificate(fqc)
        # Chain adoption (Optimization in Practice / Figure 4).
        if (
            self.config.adoption_enabled
            and self.replica.fallback_mode
            and fqc.view == self.replica.v_cur
            and fqc.height < self.top_height
        ):
            self._propose_next_height(fqc)

    # ------------------------------------------------------------------
    # Leader Election
    # ------------------------------------------------------------------
    def handle_fqc_message(self, sender: int, message: FallbackQCMessage) -> None:
        replica = self.replica
        fqc = message.fqc
        if fqc.height != self.top_height:
            return
        if not verify_fallback_qc(self.crypto, fqc):
            return
        self.record_fqc(fqc)
        completed = self._view_state(fqc.view).completed
        if self.config.fallback_top_height == 2:
            # Figure 4 counts announcements "signed by distinct replicas".
            completed.add(sender)
        else:
            completed.add(fqc.proposer)
        if (
            completed.count >= replica.quorum
            and replica.fallback_mode
            and fqc.view == replica.v_cur
            and fqc.view not in self._coin_share_sent
        ):
            self._coin_share_sent.add(fqc.view)
            share = self.crypto.coin_share(fqc.view)
            replica.network.multicast(replica.process_id, CoinShareMessage(share=share))

    # ------------------------------------------------------------------
    # Exit Fallback
    # ------------------------------------------------------------------
    def handle_coin_share(self, sender: int, message: CoinShareMessage) -> None:
        share = message.share
        if share.signer != sender:
            return
        if not self._deferred and not self.crypto.verify_coin_share(share):
            return
        view = share.view
        if view in self.coin_qcs:
            return
        tracker = self._view_state(view).coin_shares
        tracker.add(sender, share)
        if tracker.reached:
            try:
                coin_qc = self.crypto.reveal_coin(tracker.shares(), view)
            except SignatureError:
                tracker.evict_invalid(self.crypto.verify_coin_share)
                return
            self.exit_fallback(coin_qc)

    def handle_coin_qc(self, sender: int, message: CoinQCMessage) -> None:
        coin_qc = message.coin_qc
        if not self.crypto.verify_coin_qc(coin_qc):
            return
        self.exit_fallback(coin_qc)

    def exit_fallback(self, coin_qc: CoinQC) -> None:
        replica = self.replica
        view = coin_qc.view
        first_sighting = view not in self.coin_qcs
        self.coin_qcs[view] = coin_qc
        if first_sighting:
            # Endorse any stored f-QCs by the elected leader (Lock).
            self._process_endorsed(view, coin_qc.leader)
        if view < replica.v_cur or view in self._exited_views:
            return
        self._exited_views.add(view)
        if view not in self._coin_qc_forwarded:
            self._coin_qc_forwarded.add(view)
            replica.network.multicast(
                replica.process_id, CoinQCMessage(coin_qc=coin_qc)
            )
        if replica.fallback_mode and self.entered_view == view:
            replica.safety.adopt_leader_votes(coin_qc.leader)
        replica.fallback_mode = False
        replica.v_cur = view + 1
        replica.observer.on_fallback_exited(
            replica.process_id, view, coin_qc.leader, replica.now
        )
        # Lock on the endorsed chain (again: _process_endorsed above ran
        # before v_cur moved; re-running is idempotent and handles the case
        # where we exited via a forwarded coin-QC without stored f-QCs).
        self._process_endorsed(view, coin_qc.leader)
        self._prune_old_views(replica.v_cur)
        replica.after_view_change()

    def _process_endorsed(self, view: int, leader: int) -> None:
        """Handle the elected leader's stored f-QCs as regular QCs."""
        state = self._views.get(view)
        if state is None:
            return
        for height in range(self.top_height, 0, -1):
            fqc = state.fqc_get(leader, height)
            if fqc is not None:
                self.replica.process_certificate(fqc)
                return

    # ------------------------------------------------------------------
    # Memory hygiene
    # ------------------------------------------------------------------
    #: Views of fallback state retained behind the current view.  Old
    #: coin-QCs are kept forever (endorsement checks on historical blocks
    #: need them and they are O(1) per view); everything else is per-view
    #: working state that can be dropped once the view is settled.
    PRUNE_MARGIN = 2

    def _prune_old_views(self, current_view: int) -> None:
        horizon = current_view - self.PRUNE_MARGIN
        if horizon <= 0:
            return
        for view in [v for v in self._views if v < horizon]:
            del self._views[view]

    # ------------------------------------------------------------------
    # Durable-snapshot support
    # ------------------------------------------------------------------
    def proposed_heights(self) -> dict[int, int]:
        """View -> own max proposed f-block height (journal snapshot)."""
        return {
            view: state.max_proposed_height
            for view, state in self._views.items()
            if state.max_proposed_height > 0
        }

    def restore_proposed_heights(self, heights: dict[int, int]) -> None:
        """Journal restore: never re-propose already-covered heights."""
        for view, height in heights.items():
            self._view_state(view).max_proposed_height = height

    # ------------------------------------------------------------------
    # Introspection (tests and tooling; not on the message hot path)
    # ------------------------------------------------------------------
    @property
    def fqcs(self) -> dict[tuple[int, int, int], FallbackQC]:
        """All retained f-QCs keyed (view, proposer, height) — the paper's
        "records all the f-QCs of view v by replica j", materialized from
        the dense per-view arrays."""
        return {
            (view, proposer, height): fqc
            for view, state in self._views.items()
            for (proposer, height), fqc in state.fqc_items()
        }

    @property
    def _timeout_shares(self) -> dict[int, dict[int, ThresholdSignatureShare]]:
        return {
            view: dict(zip(state.timeouts.signers(), state.timeouts.shares()))
            for view, state in self._views.items()
            if state.timeouts.count > 0
        }

    @property
    def _coin_shares(self) -> dict[int, dict[int, CoinShare]]:
        return {
            view: dict(zip(state.coin_shares.signers(), state.coin_shares.shares()))
            for view, state in self._views.items()
            if state.coin_shares.count > 0
        }

    @property
    def _completed(self) -> dict[int, set[int]]:
        return {
            view: set(state.completed.members())
            for view, state in self._views.items()
            if state.completed.count > 0
        }

    @property
    def _own_blocks(self) -> dict[tuple[int, int], FallbackBlock]:
        return {
            (view, height): block
            for view, state in self._views.items()
            for height, block in enumerate(state.own_blocks)
            if block is not None
        }

    @property
    def _own_vote_shares(self) -> dict[str, dict[int, ThresholdSignatureShare]]:
        result: dict[str, dict[int, ThresholdSignatureShare]] = {}
        for state in self._views.values():
            for height, tracker in enumerate(state.own_votes):
                if tracker is None or tracker.count == 0:
                    continue
                block = state.own_blocks[height]
                if block is not None:
                    result[block.id] = dict(
                        zip(tracker.signers(), tracker.shares())
                    )
        return result

    @property
    def _max_proposed_height(self) -> dict[int, int]:
        return self.proposed_heights()

    @property
    def _ftcs(self) -> dict[int, FallbackTC]:
        return {
            view: state.ftc
            for view, state in self._views.items()
            if state.ftc is not None
        }

    def _iter_views(self) -> Iterator[tuple[int, FallbackViewState]]:
        return iter(self._views.items())
