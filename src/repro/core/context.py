"""Shared cryptographic setup and the per-replica crypto context.

:class:`SharedSetup` is what the paper's trusted dealer produces once per
cluster: the PKI registry, the threshold schemes for votes and timeouts
(threshold 2f+1) and the common coin (threshold f+1).  Each replica then
receives a :class:`CryptoContext` bundling its private key with the shared
verification machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import ProtocolConfig
from repro.crypto.certcache import VerifiedCertCache
from repro.crypto.coin import CoinShare, CommonCoin
from repro.crypto.keys import KeyPair, Registry
from repro.crypto.sharepool import VerifiedSharePool
from repro.crypto.threshold import (
    ThresholdScheme,
    ThresholdSignature,
    ThresholdSignatureShare,
)
from repro.types.certificates import CoinQC


@dataclass
class SharedSetup:
    """Dealer output shared by the whole cluster."""

    config: ProtocolConfig
    registry: Registry
    quorum_scheme: ThresholdScheme
    coin: CommonCoin
    #: Cluster-wide verification-verdict cache (a verification is a pure
    #: function of certificate content + key epoch, so one replica's
    #: verdict holds for all).  ``None`` disables caching entirely.
    cert_cache: Optional[VerifiedCertCache] = None
    #: Cluster-wide share-verification pool: each (signer, payload) share
    #: is hash-verified at most once across all n replicas; re-checks —
    #: including the per-share re-verification inside ``combine()`` — are
    #: dictionary lookups.  ``None`` disables pooling entirely.
    share_pool: Optional[VerifiedSharePool] = None

    @classmethod
    def deal(
        cls,
        config: ProtocolConfig,
        coin_seed: int = 0,
        cert_cache: Optional[VerifiedCertCache] = None,
        cert_cache_enabled: bool = True,
        share_pool: Optional[VerifiedSharePool] = None,
        share_pool_enabled: bool = True,
    ) -> "SharedSetup":
        registry = Registry(config.n)
        if cert_cache is None:
            cert_cache = VerifiedCertCache(enabled=cert_cache_enabled)
        if share_pool is None:
            share_pool = VerifiedSharePool(enabled=share_pool_enabled)
        registry.add_epoch_listener(cert_cache.on_epoch_change)
        registry.add_epoch_listener(share_pool.on_epoch_change)
        return cls(
            config=config,
            registry=registry,
            quorum_scheme=ThresholdScheme(registry, threshold=config.quorum_size),
            coin=CommonCoin(registry, threshold=config.coin_threshold, seed=coin_seed),
            cert_cache=cert_cache,
            share_pool=share_pool,
        )

    def context_for(self, replica: int) -> "CryptoContext":
        return CryptoContext(setup=self, key_pair=self.registry.key_pair(replica))


@dataclass
class CryptoContext:
    """One replica's view of the crypto setup (its key + shared schemes)."""

    setup: SharedSetup
    key_pair: KeyPair

    @property
    def replica(self) -> int:
        return self.key_pair.owner

    @property
    def scheme(self) -> ThresholdScheme:
        return self.setup.quorum_scheme

    @property
    def coin(self) -> CommonCoin:
        return self.setup.coin

    @property
    def cert_cache(self) -> Optional[VerifiedCertCache]:
        return self.setup.cert_cache

    @property
    def share_pool(self) -> Optional[VerifiedSharePool]:
        return self.setup.share_pool

    @property
    def registry_epoch(self) -> int:
        return self.setup.registry.epoch

    # ------------------------------------------------------------------
    # Share helpers
    # ------------------------------------------------------------------
    def share(self, payload: object) -> ThresholdSignatureShare:
        return self.scheme.sign_share(self.key_pair, payload)

    def verify_share(self, share: ThresholdSignatureShare, payload: object) -> bool:
        """Pooled share verification: one hash per (signer, payload) pair
        cluster-wide; every re-check is a dictionary lookup."""
        pool = self.setup.share_pool
        if pool is None:
            return self.scheme.verify_share(share, payload)
        try:
            key = (
                self.setup.registry.epoch,
                "tshare",
                share.signer,
                share.epoch,
                share.tag,
                payload,
            )
            return pool.check(
                key, lambda: self.scheme.verify_share(share, payload)
            )
        except TypeError:  # unhashable payload — verify directly
            return self.scheme.verify_share(share, payload)

    def combine(
        self, shares: Iterable[ThresholdSignatureShare], payload: object
    ) -> ThresholdSignature:
        return self.scheme.combine(shares, payload, share_verifier=self.verify_share)

    def verify_combined(self, signature: ThresholdSignature, payload: object) -> bool:
        return self.scheme.verify(signature, payload)

    # ------------------------------------------------------------------
    # Coin helpers
    # ------------------------------------------------------------------
    def coin_share(self, view: int) -> CoinShare:
        return self.coin.share(self.key_pair, view)

    def verify_coin_share(self, share: CoinShare) -> bool:
        """Pooled coin-share verification (see :meth:`verify_share`)."""
        pool = self.setup.share_pool
        if pool is None:
            return self.coin.verify_share(share)
        key = (
            self.setup.registry.epoch,
            "coinshare",
            share.signer,
            share.epoch,
            share.view,
            share.tag,
        )
        return pool.check(key, lambda: self.coin.verify_share(share))

    def reveal_coin(self, shares: Iterable[CoinShare], view: int) -> CoinQC:
        leader = self.coin.reveal(
            shares, view, share_verifier=self.verify_coin_share
        )
        return CoinQC(view=view, leader=leader, proof_tag=self.coin.leader_proof_tag(view))

    def verify_coin_qc(self, coin_qc: CoinQC) -> bool:
        return self.coin.verify_leader(coin_qc.view, coin_qc.leader, coin_qc.proof_tag)
