"""Certificate validation and rank helpers shared by all protocol variants."""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Union

from repro.core.context import CryptoContext
from repro.types.certificates import (
    CoinQC,
    EndorsedFallbackQC,
    FallbackQC,
    FallbackTC,
    ParentCert,
    QC,
    Rank,
    TimeoutCertificate,
    is_genesis_qc,
)

AnyCert = Union[QC, FallbackQC, EndorsedFallbackQC]

#: Everything the verified-certificate cache can key on (has ``.digest``).
_Digestable = Union[QC, FallbackQC, CoinQC, FallbackTC, TimeoutCertificate]


def _cached(
    crypto: CryptoContext, cert: _Digestable, verifier: Callable[[], bool]
) -> bool:
    """Run ``verifier`` through the cluster-wide verified-certificate cache.

    A verdict is a pure function of the certificate content (``cert.digest``
    covers the payload plus the signature's epoch/tag/signers) and the
    registry epoch, so one replica's verification serves the whole cluster.
    """
    cache = crypto.cert_cache
    if cache is None:
        return verifier()
    return cache.check(cert.digest, crypto.registry_epoch, verifier)


def verify_qc(crypto: CryptoContext, qc: QC) -> bool:
    """A regular QC is valid if genesis or carries a 2f+1 threshold sig."""
    if is_genesis_qc(qc):
        return True
    return _cached(
        crypto, qc, lambda: crypto.verify_combined(qc.signature, qc.payload())
    )


def verify_fallback_qc(crypto: CryptoContext, fqc: FallbackQC) -> bool:
    return _cached(
        crypto, fqc, lambda: crypto.verify_combined(fqc.signature, fqc.payload())
    )


def verify_coin_qc(crypto: CryptoContext, coin_qc: CoinQC) -> bool:
    return _cached(crypto, coin_qc, lambda: crypto.verify_coin_qc(coin_qc))


def verify_endorsed(crypto: CryptoContext, cert: EndorsedFallbackQC) -> bool:
    return verify_fallback_qc(crypto, cert.fqc) and verify_coin_qc(
        crypto, cert.coin_qc
    )


def verify_parent_cert(crypto: CryptoContext, cert: ParentCert) -> bool:
    """Validate anything a block may embed / qc_high may hold."""
    if isinstance(cert, EndorsedFallbackQC):
        return verify_endorsed(crypto, cert)
    if isinstance(cert, QC):
        return verify_qc(crypto, cert)
    return False


def verify_embedded_cert(crypto: CryptoContext, cert: AnyCert) -> bool:
    """Validate a certificate embedded in any block (f-blocks embed raw
    f-QCs for heights 2+)."""
    if isinstance(cert, FallbackQC):
        return verify_fallback_qc(crypto, cert)
    return verify_parent_cert(crypto, cert)


def verify_fallback_tc(crypto: CryptoContext, ftc: FallbackTC) -> bool:
    return _cached(
        crypto, ftc, lambda: crypto.verify_combined(ftc.signature, ftc.payload())
    )


def verify_timeout_cert(crypto: CryptoContext, tc: TimeoutCertificate) -> bool:
    return _cached(
        crypto, tc, lambda: crypto.verify_combined(tc.signature, tc.payload())
    )


def effective_rank(cert: AnyCert, coin_qcs: Mapping[int, CoinQC]) -> Rank:
    """Rank of a certificate given the coin-QCs known so far.

    A raw f-QC counts as endorsed — and takes the elevated rank — iff its
    view's coin elected its proposer.  Regular QCs and explicit endorsed
    wrappers rank as themselves.
    """
    if isinstance(cert, EndorsedFallbackQC):
        return cert.rank
    if isinstance(cert, FallbackQC):
        coin_qc = coin_qcs.get(cert.view)
        if coin_qc is not None and coin_qc.leader == cert.proposer:
            return Rank(view=cert.view, endorsed=True, round=cert.round)
        return cert.rank
    return cert.rank


def endorse_if_elected(
    cert: AnyCert, coin_qcs: Mapping[int, CoinQC]
) -> Optional[ParentCert]:
    """Normalize a certificate to something qc_high may hold.

    Returns the certificate itself (QC / endorsed wrapper), wraps a raw
    f-QC whose proposer was elected, or None for an unendorsed f-QC (which
    must never be handled as a QC).
    """
    if isinstance(cert, (QC, EndorsedFallbackQC)):
        return cert
    coin_qc = coin_qcs.get(cert.view)
    if coin_qc is not None and coin_qc.leader == cert.proposer:
        return EndorsedFallbackQC(fqc=cert, coin_qc=coin_qc)
    return None
