"""The paper's core protocol: DiemBFT steady state + asynchronous fallback."""

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.context import CryptoContext, SharedSetup
from repro.core.leader import LeaderSchedule
from repro.core.replica import Replica

__all__ = [
    "CryptoContext",
    "LeaderSchedule",
    "ProtocolConfig",
    "ProtocolVariant",
    "Replica",
    "SharedSetup",
]
