"""Commit rules: 3-chain (Figure 2) and 2-chain (Figure 4).

A block commits when it heads a chain of ``depth`` adjacent blocks with
consecutive round numbers and the same view number, where each block is
either a certified regular block or an *endorsed* fallback block.  The chain
is discovered by walking the certificates embedded in blocks, starting from
a newly observed certificate.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.validation import AnyCert, effective_rank
from repro.ledger.blockstore import BlockStore
from repro.types.blocks import AnyBlock
from repro.types.certificates import CoinQC, EndorsedFallbackQC, FallbackQC, QC, Rank


def cert_counts_for_commit(cert: AnyCert, coin_qcs: Mapping[int, CoinQC]) -> bool:
    """Regular QCs count; f-QCs count only when endorsed by their view's coin."""
    if isinstance(cert, QC) or isinstance(cert, EndorsedFallbackQC):
        return True
    if isinstance(cert, FallbackQC):
        coin_qc = coin_qcs.get(cert.view)
        return coin_qc is not None and coin_qc.leader == cert.proposer
    return False


def find_commit_target(
    store: BlockStore,
    cert: AnyCert,
    coin_qcs: Mapping[int, CoinQC],
    depth: int,
) -> Optional[AnyBlock]:
    """The block (if any) committed by observing ``cert``.

    Walks ``depth`` certificate hops down from ``cert`` and checks the
    commit conditions.  Returns the deepest block of the chain (the one to
    commit, together with all its ancestors) or None if the rule does not
    fire — including when intermediate blocks are missing (the caller
    re-checks once catch-up delivers them).
    """
    if depth < 1:
        raise ValueError("commit depth must be >= 1")
    chain: list[AnyBlock] = []
    current_cert: AnyCert = cert
    for _ in range(depth):
        if not cert_counts_for_commit(current_cert, coin_qcs):
            return None
        block = store.get(current_cert.block_id)
        if block is None:
            return None
        if block.round != current_cert.round or block.view != current_cert.view:
            return None  # malformed certificate (cannot happen with honest quorums)
        chain.append(block)
        if len(chain) == depth:
            break
        if block.qc is None:
            return None  # hit genesis before assembling the chain
        current_cert = block.qc
    top_view = chain[0].view
    for higher, lower in zip(chain, chain[1:]):
        if higher.round != lower.round + 1:
            return None
        if lower.view != top_view:
            return None
    return chain[-1]


def parent_rank_of(
    block: AnyBlock, coin_qcs: Mapping[int, CoinQC]
) -> Optional[Rank]:
    """Effective rank of the certificate embedded in ``block`` (None for
    genesis).  Used by the 2-chain lock update."""
    if block.qc is None:
        return None
    return effective_rank(block.qc, coin_qcs)
