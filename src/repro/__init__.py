"""repro — reproduction of "Be Prepared When Network Goes Bad" (PODC 2021).

A BFT SMR protocol that is linear under synchrony with honest leaders,
quadratic under asynchrony, and always live — DiemBFT's steady state plus an
asynchronous view-change (fallback) protocol — together with the substrates
needed to run and evaluate it: a deterministic discrete-event network
simulator, ideal-model crypto, baselines, fault injection, and a benchmark
harness reproducing the paper's Table 1 and analytic claims.

Quickstart::

    from repro import ClusterBuilder

    cluster = ClusterBuilder(n=4, seed=1).build()
    result = cluster.run_until_commits(20)
    print(result.metrics.summary())
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

# Public API is re-exported lazily (PEP 562) so that importing a substrate
# (e.g. repro.sim) never pulls in the whole runtime stack.
_EXPORTS = {
    "AsynchronousDelay": "repro.net.conditions",
    "Cluster": "repro.runtime.cluster",
    "ClusterBuilder": "repro.runtime.cluster",
    "LeaderTargetingAdversary": "repro.net.conditions",
    "NetworkSchedule": "repro.net.conditions",
    "PartialSynchronyDelay": "repro.net.conditions",
    "PartitionDelay": "repro.net.conditions",
    "ProtocolConfig": "repro.core.config",
    "ProtocolVariant": "repro.core.config",
    "RunResult": "repro.runtime.cluster",
    "SynchronousDelay": "repro.net.conditions",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)


if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.core.config import ProtocolConfig, ProtocolVariant  # noqa: F401
    from repro.net.conditions import (  # noqa: F401
        AsynchronousDelay,
        LeaderTargetingAdversary,
        NetworkSchedule,
        PartialSynchronyDelay,
        PartitionDelay,
        SynchronousDelay,
    )
    from repro.runtime.cluster import Cluster, ClusterBuilder, RunResult  # noqa: F401
