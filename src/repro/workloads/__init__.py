"""Deterministic client workload generators."""

from repro.workloads.bursty import BurstyWorkload, SkewedKeyWorkload
from repro.workloads.generator import ClosedLoopWorkload, OpenLoopWorkload, Workload

__all__ = [
    "BurstyWorkload",
    "ClosedLoopWorkload",
    "OpenLoopWorkload",
    "SkewedKeyWorkload",
    "Workload",
]
