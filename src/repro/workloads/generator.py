"""Workload generators: deterministic streams of client transactions.

Workloads run as simulated processes that periodically inject transactions
into every replica's mempool (clients broadcast submissions, the usual BFT
SMR client model).  All randomness comes from explicit seeds, so workloads
are reproducible.

The timed workloads (:class:`OpenLoopWorkload`, and
:class:`~repro.workloads.bursty.BurstyWorkload`) are thin adapters over
:mod:`repro.traffic.loadgen` — the arrival schedule and emission loop live
there; this module only supplies the legacy constructor surface, payload
functions, and the broadcast-to-every-mempool sink.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.mempool.mempool import Mempool
from repro.sim.scheduler import Scheduler
from repro.traffic.loadgen import OpenLoopGenerator, UniformArrivals
from repro.types.transactions import Transaction, make_transaction

#: Builds the payload string for transaction ``index`` of a client.
PayloadFn = Callable[[int, int], str]


def _default_payload(client: int, index: int) -> str:
    return f"set key-{index % 64} value-{client}-{index}"


class Workload:
    """Base: preloads a fixed number of transactions at start."""

    def __init__(
        self,
        mempools: Sequence[Mempool],
        count: int = 1000,
        client: int = 0,
        payload_size: int = 100,
        payload_fn: Optional[PayloadFn] = None,
    ) -> None:
        self.mempools = list(mempools)
        self.count = count
        self.client = client
        self.payload_size = payload_size
        self.payload_fn = payload_fn or _default_payload
        self.submitted: list[Transaction] = []

    def start(self, scheduler: Scheduler) -> None:
        """Inject everything at time zero (a deep backlog)."""
        for index in range(self.count):
            self._inject(index, scheduler.now)

    # The loadgen factory/sink pair: adapters hand these to a generator so
    # transaction ids, payloads, and broadcast submission stay identical to
    # the historical inject path.
    def _build(self, index: int, now: float) -> Transaction:
        return make_transaction(
            index,
            client=self.client,
            payload=self.payload_fn(self.client, index),
            payload_size=self.payload_size,
            submitted_at=now,
        )

    def _sink(self, transaction: Transaction) -> bool:
        accepted = False
        for mempool in self.mempools:
            if mempool.submit(transaction):
                accepted = True
        return accepted

    def _inject(self, index: int, now: float) -> Transaction:
        transaction = self._build(index, now)
        self.submitted.append(transaction)
        self._sink(transaction)
        return transaction


class OpenLoopWorkload(Workload):
    """Injects transactions at a fixed rate for the whole run.

    Adapter over :class:`repro.traffic.loadgen.OpenLoopGenerator` with a
    :class:`~repro.traffic.loadgen.UniformArrivals` schedule: first
    injection at start time, one every ``1/rate`` after.
    """

    def __init__(
        self,
        mempools: Sequence[Mempool],
        rate: float = 100.0,
        client: int = 0,
        payload_size: int = 100,
        payload_fn: Optional[PayloadFn] = None,
        max_count: int = 1_000_000,
    ) -> None:
        super().__init__(
            mempools,
            count=0,
            client=client,
            payload_size=payload_size,
            payload_fn=payload_fn,
        )
        self.rate = rate
        self.max_count = max_count
        self._generator = OpenLoopGenerator(
            UniformArrivals(rate),
            self._sink,
            client=client,
            factory=self._build,
            max_count=max_count,
        )
        # Share one submission log so callers keep reading `.submitted`.
        self._generator.submitted = self.submitted

    def start(self, scheduler: Scheduler) -> None:
        self._generator.start(scheduler)


class ClosedLoopWorkload(Workload):
    """Keeps a fixed number of transactions outstanding.

    ``notify_committed`` must be wired to the cluster's commit hook; each
    commit of one of our transactions triggers a replacement submission.
    """

    def __init__(
        self,
        mempools: Sequence[Mempool],
        outstanding: int = 100,
        client: int = 0,
        payload_size: int = 100,
        payload_fn: Optional[PayloadFn] = None,
    ) -> None:
        super().__init__(
            mempools,
            count=outstanding,
            client=client,
            payload_size=payload_size,
            payload_fn=payload_fn,
        )
        self.outstanding = outstanding
        self._scheduler: Optional[Scheduler] = None
        self._next_index = outstanding

    def start(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        super().start(scheduler)

    def notify_committed(self, transaction: Transaction) -> None:
        if self._scheduler is None or transaction.client != self.client:
            return
        self._inject(self._next_index, self._scheduler.now)
        self._next_index += 1
