"""Bursty and skewed workloads.

Real client traffic is rarely a smooth open loop: it arrives in bursts
(batch jobs, market opens) and with skewed key popularity.  These workloads
stress batching and commit-latency tails.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mempool.mempool import Mempool
from repro.sim.scheduler import Scheduler
from repro.traffic.loadgen import BurstArrivals, OpenLoopGenerator
from repro.workloads.generator import PayloadFn, Workload


class BurstyWorkload(Workload):
    """Injects ``burst_size`` transactions every ``period`` seconds.

    Adapter over :class:`repro.traffic.loadgen.OpenLoopGenerator` with a
    :class:`~repro.traffic.loadgen.BurstArrivals` schedule: the first burst
    lands at start time, each later burst exactly one period after the
    previous, capped at ``bursts``.
    """

    def __init__(
        self,
        mempools: Sequence[Mempool],
        burst_size: int = 50,
        period: float = 10.0,
        bursts: int = 20,
        client: int = 0,
        payload_size: int = 100,
        payload_fn: Optional[PayloadFn] = None,
    ) -> None:
        super().__init__(
            mempools, count=0, client=client,
            payload_size=payload_size, payload_fn=payload_fn,
        )
        if burst_size < 1 or period <= 0 or bursts < 1:
            raise ValueError("burst_size/period/bursts must be positive")
        self.burst_size = burst_size
        self.period = period
        self.bursts = bursts
        self._generator = OpenLoopGenerator(
            BurstArrivals(burst_size, period, bursts=bursts),
            self._sink,
            client=client,
            factory=self._build,
        )
        self._generator.submitted = self.submitted

    def start(self, scheduler: Scheduler) -> None:
        self._generator.start(scheduler)


class SkewedKeyWorkload(Workload):
    """KV ``set`` commands with Zipf-like key popularity.

    A handful of keys receive most writes (popularity ~ 1/rank), which makes
    the example KV state machines show realistic hot-key churn.
    """

    def __init__(
        self,
        mempools: Sequence[Mempool],
        count: int = 1000,
        keys: int = 64,
        client: int = 0,
        payload_size: int = 100,
        seed: int = 0,
    ) -> None:
        import random

        rng = random.Random(("skewed-workload", seed).__repr__())
        weights = [1.0 / rank for rank in range(1, keys + 1)]

        def payload(client_id: int, index: int) -> str:
            key = rng.choices(range(keys), weights=weights, k=1)[0]
            return f"set key-{key} value-{client_id}-{index}"

        super().__init__(
            mempools, count=count, client=client,
            payload_size=payload_size, payload_fn=payload,
        )
