"""Command-line interface: run protocols and experiments from a shell.

Examples::

    python -m repro protocols
    python -m repro run --protocol fallback-3chain --n 7 --network attack --commits 20
    python -m repro run --n 4 --byzantine 0:withhold --commits 30
    python -m repro table1 --n 7
    python -m repro scaling --sizes 4 7 10 16
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.complexity import classify_complexity, fit_loglog_slope
from repro.analysis.safety import check_cluster_safety
from repro.analysis.tables import fmt_cost, render_table
from repro.experiments.scenarios import (
    leader_attack_factory,
    run_async_attack,
    run_sync,
)
from repro.faults import (
    CrashReplica,
    EquivocatingLeader,
    NonVoter,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)
from repro.net.conditions import (
    AsynchronousDelay,
    PartialSynchronyDelay,
    PartitionDelay,
    SynchronousDelay,
)
from repro.protocols import PROTOCOLS, preset
from repro.runtime.cluster import ClusterBuilder

BEHAVIOURS = {
    "silent": lambda arg: byzantine(SilentReplica),
    "crash": lambda arg: byzantine(CrashReplica, crash_at=float(arg or 30.0)),
    "nonvoter": lambda arg: byzantine(NonVoter),
    "withhold": lambda arg: byzantine(WithholdingLeader),
    "equivocate": lambda arg: byzantine(EquivocatingLeader),
    "staleqc": lambda arg: byzantine(StaleQCLeader),
}


def _parse_byzantine(specs: Sequence[str]):
    """Parse ``replica:behaviour[@arg]`` specs, e.g. ``2:crash@25``."""
    parsed = []
    for spec in specs:
        try:
            replica_text, behaviour_text = spec.split(":", 1)
            if "@" in behaviour_text:
                name, arg = behaviour_text.split("@", 1)
            else:
                name, arg = behaviour_text, None
            factory = BEHAVIOURS[name](arg)
        except (ValueError, KeyError):
            known = ", ".join(sorted(BEHAVIOURS))
            raise SystemExit(
                f"bad --byzantine spec {spec!r}; expected replica:behaviour[@arg] "
                f"with behaviour in {{{known}}}"
            )
        parsed.append((int(replica_text), factory))
    return parsed


def _network_args(args, builder: ClusterBuilder) -> None:
    if args.network == "sync":
        builder.with_delay_model(SynchronousDelay(delta=args.delta))
    elif args.network == "async":
        builder.with_delay_model(
            AsynchronousDelay(base_delay=args.delta, tail_scale=8 * args.delta,
                              max_delay=60 * args.delta)
        )
    elif args.network == "attack":
        builder.with_delay_model_factory(leader_attack_factory())
    elif args.network == "gst":
        builder.with_delay_model(
            PartialSynchronyDelay(
                gst=args.gst,
                before=AsynchronousDelay(base_delay=6.0, tail_scale=10.0, max_delay=35.0),
                after=SynchronousDelay(delta=args.delta),
            )
        )
    elif args.network == "partition":
        half = args.n // 2
        builder.with_delay_model(
            PartitionDelay(
                groups=[list(range(half)), list(range(half, args.n))],
                heal_time=args.heal,
                base=SynchronousDelay(delta=args.delta),
            )
        )


def cmd_protocols(args) -> int:
    rows = [
        [name, spec.description, spec.paper_sync_cost,
         "always live" if spec.paper_async_live else "not live if async"]
        for name, spec in PROTOCOLS.items()
    ]
    print(render_table(["name", "description", "sync cost", "asynchrony"], rows,
                       title="Available protocols"))
    return 0


def cmd_run(args) -> int:
    config = preset(args.protocol).config(
        args.n,
        round_timeout=args.timeout,
        **({"fallback_adoption": True} if args.adoption else {}),
    )
    builder = ClusterBuilder(config=config, seed=args.seed).with_preload(args.preload)
    _network_args(args, builder)
    for replica_id, factory in _parse_byzantine(args.byzantine):
        builder.with_byzantine(replica_id, factory)
    cluster = builder.build()
    result = cluster.run_until_commits(args.commits, until=args.until)
    metrics = cluster.metrics
    violations = check_cluster_safety(cluster.honest_replicas())
    payload = {
        "protocol": args.protocol,
        "n": args.n,
        "seed": args.seed,
        "network": args.network,
        "decisions": metrics.decisions(),
        "live": metrics.decisions() > 0,
        "simulated_time": result.stopped_at,
        "messages": metrics.honest_messages,
        "bytes": metrics.honest_bytes,
        "messages_per_decision": metrics.messages_per_decision(),
        "fallbacks": metrics.fallback_count(),
        "phases": metrics.phase_messages(),
        "safety_violations": [str(v) for v in violations],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(metrics.summary())
        print(f"simulated time: {result.stopped_at:.1f}s")
        print(f"safety: {'OK' if not violations else violations}")
    return 0 if not violations else 2


def cmd_live(args) -> int:
    """Run the protocol over real localhost TCP sockets (live mode).

    Three shapes share this subcommand:

    - default: the whole cluster in one process (threads of one event loop),
    - ``--replica I --cluster-spec S``: run exactly one replica process
      (this is what the supervisor spawns),
    - ``--processes``: spawn one OS process per replica under the
      supervisor, with optional SIGKILL chaos (``--kills``) and a client
      swarm (``--swarm``).
    """
    from repro.analysis.complexity import live_decision_costs
    from repro.runtime.live import LiveCluster

    if args.replica is not None:
        return _cmd_live_replica(args)
    if args.write_spec or args.processes:
        return _cmd_live_processes(args)

    config = preset(args.protocol).config(args.n, round_timeout=args.timeout)
    cluster = LiveCluster(
        n=args.n,
        seed=args.seed,
        preload=args.preload,
        durable=args.durable,
        config=config,
    )
    report = cluster.run(
        target_commits=args.commits,
        timeout=args.duration if args.duration is not None else 60.0,
        force_fallback=args.force_fallback,
    )
    assert cluster.metrics is not None
    costs = live_decision_costs(cluster.metrics)
    payload = {
        "mode": "live",
        "protocol": args.protocol,
        "n": args.n,
        "seed": args.seed,
        "decisions": report.decisions,
        "min_honest_height": report.min_honest_height,
        "fallbacks": report.fallbacks,
        "wall_seconds": report.wall_seconds,
        "encoded_bytes": report.encoded_bytes,
        "bytes_per_decision": costs.bytes_per_decision,
        "messages_per_decision": costs.messages_per_decision,
        "messages_dropped": report.messages_dropped,
        "ledgers_consistent": report.ledgers_consistent,
        "timed_out": report.timed_out,
        "transport": report.transport,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"decisions: {report.decisions} (min height {report.min_honest_height})")
        print(f"fallbacks entered: {report.fallbacks}")
        print(f"wall time: {report.wall_seconds:.2f}s")
        print(f"encoded bytes: {report.encoded_bytes}"
              f" ({fmt_cost(costs.bytes_per_decision)}/decision)")
        print(f"transport: {report.transport}")
        print(f"ledgers consistent: {report.ledgers_consistent}")
        if report.timed_out:
            print("TIMED OUT before reaching the commit target")
    return 0 if report.ok else 2


def _cmd_live_replica(args) -> int:
    """Run one replica as this OS process (the supervisor's spawn target)."""
    from repro.runtime.replica_process import run_replica_process
    from repro.runtime.spec import ClusterSpec

    if not args.cluster_spec:
        raise SystemExit("--replica requires --cluster-spec")
    spec = ClusterSpec.load(args.cluster_spec)
    return run_replica_process(spec, args.replica, duration=args.duration)


def _cmd_live_processes(args) -> int:
    """Supervised multi-process cluster with optional chaos and swarm."""
    import asyncio
    import tempfile

    from repro.client.swarm import ClientSwarm
    from repro.runtime.spec import ClusterSpec
    from repro.runtime.supervisor import Supervisor, kill_schedule

    data_dir = args.data_dir or tempfile.mkdtemp(prefix="repro-live-")
    spec = ClusterSpec.create(
        args.n,
        data_dir,
        seed=args.seed,
        protocol=args.protocol,
        round_timeout=args.timeout,
        preload=args.preload,
        fsync=args.fsync,
    )
    if args.write_spec:
        path = spec.save(args.write_spec)
        print(f"cluster spec written to {path}")
        return 0
    duration = args.duration if args.duration is not None else 60.0
    schedule = kill_schedule(args.kills, args.n) if args.kills else None

    async def run():
        supervisor = Supervisor(spec, schedule=schedule)
        swarm = (
            ClientSwarm(spec, clients=args.swarm, mode=args.swarm_mode)
            if args.swarm
            else None
        )
        swarm_task = None
        await supervisor.start()
        try:
            if swarm is not None:
                swarm_task = asyncio.get_running_loop().create_task(
                    swarm.run(duration=duration), name="cli-swarm"
                )
            report = await supervisor.wait(
                target_commits=args.commits, duration=duration
            )
        finally:
            if swarm_task is not None:
                swarm_task.cancel()
                await asyncio.gather(swarm_task, return_exceptions=True)
            await supervisor.stop()
        return report, (swarm.report() if swarm is not None else None)

    report, swarm_report = asyncio.run(run())
    payload = {
        "mode": "live-processes",
        "protocol": args.protocol,
        "n": args.n,
        "seed": args.seed,
        "data_dir": str(data_dir),
        **report.to_json(),
    }
    if swarm_report is not None:
        payload["swarm"] = swarm_report.to_json()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"commits (min height): {report.commits} (max {report.max_height})")
        print(f"prefixes consistent: {report.prefixes_consistent}")
        print(f"kills: {len(report.kills)}, restarts: {report.restarts}, "
              f"down: {report.down}")
        for record in report.kills:
            recovery = record.recovery_seconds
            print(f"  replica {record.replica}: killed at {record.killed_at:.2f}s, "
                  f"recovery "
                  f"{f'{recovery:.2f}s' if recovery is not None else 'incomplete'}")
        print(f"wall time: {report.wall_seconds:.2f}s")
        if swarm_report is not None:
            print(f"swarm: {swarm_report.confirmed}/{swarm_report.submitted} "
                  f"confirmed, {swarm_report.throughput_tps:.1f} tx/s, "
                  f"p50 {swarm_report.latency_p50}")
        if report.timed_out:
            print("TIMED OUT before reaching the commit target")
    return 0 if report.ok else 2


def cmd_lint(args) -> int:
    """Run the protocol-aware static analysis suite over the source tree."""
    import json as json_module
    from pathlib import Path

    import repro
    from repro.lint import (
        LintError,
        collect_modules,
        get_rules,
        lint_modules,
        render_json,
        render_text,
        rule_catalogue,
        should_fail,
    )

    if args.list_rules:
        for rule in rule_catalogue():
            print(f"{rule.id:<20} {rule.description}")
        return 0
    src_root = (
        Path(args.src) if args.src else Path(repro.__file__).resolve().parent.parent
    )
    if args.no_tests:
        tests_root = None
    elif args.tests:
        tests_root = Path(args.tests)
    else:
        candidate = src_root.parent / "tests"
        tests_root = candidate if candidate.is_dir() else None
    try:
        modules = collect_modules(src_root, tests_root)
        if args.graph is not None:
            from repro.lint.flow import build_call_graph

            project = [
                m for m in modules if not m.is_test and m.module.startswith("repro")
            ]
            graph = build_call_graph(project)
            dump = json_module.dumps(
                graph.to_json(args.graph_prefix), indent=2, sort_keys=True
            )
            if args.graph == "-":
                print(dump)
            else:
                Path(args.graph).write_text(dump + "\n", encoding="utf-8")
                print(f"call graph written to {args.graph}")
            return 0
        if args.effects is not None:
            from repro.lint.flow import build_effects

            project = [
                m for m in modules if not m.is_test and m.module.startswith("repro")
            ]
            index = build_effects(project)
            dump = json_module.dumps(
                index.to_json(args.effects_prefix or None),
                indent=2,
                sort_keys=True,
            )
            if args.effects == "-":
                print(dump)
            else:
                Path(args.effects).write_text(dump + "\n", encoding="utf-8")
                print(f"effect summaries written to {args.effects}")
            return 0
        if args.persistence is not None:
            from repro.lint.flow import build_persistence

            index = build_persistence(modules)
            dump = json_module.dumps(
                index.to_json(args.persistence_prefix or None),
                indent=2,
                sort_keys=True,
            )
            if args.persistence == "-":
                print(dump)
            else:
                Path(args.persistence).write_text(dump + "\n", encoding="utf-8")
                print(f"persistence summaries written to {args.persistence}")
            return 0
        only_paths = None
        if args.changed:
            only_paths = _git_changed_paths(src_root.parent)
            if not only_paths:
                print("repro lint: no changed python files")
                return 0
            # Interprocedural rules (persistence, effects, taint) can
            # produce findings in a file whose *callee* changed: widen the
            # re-lint set to the changed files' call-graph neighborhood so
            # a cross-function regression is never silently skipped.
            from repro.lint.flow import neighborhood_paths

            only_paths = neighborhood_paths(modules, only_paths)
        findings = lint_modules(
            modules, get_rules(args.rule or None), only_paths=only_paths
        )
    except LintError as exc:
        raise SystemExit(f"repro lint: {exc}")
    print(render_json(findings) if args.format == "json" else render_text(findings))
    return 1 if should_fail(findings, args.fail_on) else 0


def _git_changed_paths(repo_root) -> "set[str]":
    """Repo-relative ``*.py`` paths changed vs HEAD, plus untracked files.

    The display paths in findings are repo-relative posix paths, so the
    output of ``git diff --name-only`` matches them directly.
    """
    import subprocess

    changed: "set[str]" = set()
    for command in (
        ["git", "-C", str(repo_root), "diff", "--name-only", "HEAD"],
        ["git", "-C", str(repo_root), "ls-files", "--others", "--exclude-standard"],
    ):
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            raise SystemExit(
                "repro lint: --changed needs a git checkout "
                f"({' '.join(command[3:])} failed: {result.stderr.strip()})"
            )
        changed.update(
            line.strip()
            for line in result.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return changed


def cmd_table1(args) -> int:
    rows = []
    for name in sorted(PROTOCOLS):
        sync = run_sync(name, n=args.n, seed=args.seed, target_commits=args.commits)
        attack = run_async_attack(name, n=args.n, seed=args.seed,
                                  target_commits=max(args.commits // 4, 4),
                                  until=args.until)
        rows.append([
            name,
            PROTOCOLS[name].paper_sync_cost,
            fmt_cost(sync.messages_per_decision),
            fmt_cost(attack.messages_per_decision),
            "live" if attack.live else "NOT LIVE",
        ])
    print(render_table(
        ["protocol", "paper sync", "sync msgs/dec", "async msgs/dec", "async liveness"],
        rows,
        title=f"Table 1 at n={args.n}",
    ))
    return 0


def cmd_scaling(args) -> int:
    rows = []
    sync_costs, async_costs = [], []
    for n in args.sizes:
        sync = run_sync("fallback-3chain", n=n, seed=args.seed, target_commits=30)
        attack = run_async_attack("fallback-3chain", n=n, seed=args.seed,
                                  target_commits=8, until=args.until)
        sync_costs.append(sync.messages_per_decision)
        async_costs.append(attack.messages_per_decision)
        rows.append([n, fmt_cost(sync.messages_per_decision),
                     fmt_cost(attack.messages_per_decision)])
    print(render_table(["n", "sync msgs/dec", "async msgs/dec"], rows,
                       title="Theorem 9 scaling"))
    if len(args.sizes) >= 2:
        sync_slope = fit_loglog_slope(args.sizes, sync_costs)
        async_slope = fit_loglog_slope(args.sizes, async_costs)
        print(f"sync slope  {sync_slope:.2f} ({classify_complexity(sync_slope)})")
        print(f"async slope {async_slope:.2f} ({classify_complexity(async_slope)})")
    return 0


def cmd_saturate(args) -> int:
    """Find max sustainable throughput (the knee) per scenario."""
    from repro.traffic.saturation import (
        compare_batching,
        default_scenarios,
        find_knee,
    )

    scenarios = default_scenarios()
    if args.scenario != "all":
        scenarios = {args.scenario: scenarios[args.scenario]}
    report = {}
    rows = []
    for name, scenario in scenarios.items():
        result = find_knee(
            scenario,
            duration=args.duration,
            drain=args.drain,
            seed=args.seed,
            max_rate=args.max_rate,
        )
        report[name] = result.to_json()
        knee = result.knee
        rows.append([
            name,
            f"{result.knee_rate:g}",
            f"{knee.goodput:.1f}" if knee else "-",
            f"{knee.latency.p50:.2f}" if knee and knee.latency.p50 else "-",
            f"{knee.latency.p99:.2f}" if knee and knee.latency.p99 else "-",
            len(result.curve),
        ])
    print(render_table(
        ["scenario", "knee (tx/s)", "goodput", "p50 (s)", "p99 (s)", "probes"],
        rows,
        title="Saturation search (goodput >= 95% of offered)",
    ))
    if args.compare and "steady-n4" in report:
        comparison = compare_batching(
            default_scenarios()["steady-n4"],
            report["steady-n4"]["max_sustainable_rate"],
            duration=args.duration,
            drain=args.drain,
            seed=args.seed,
        )
        report["batching_comparison"] = comparison
        verdict = "matches" if comparison["adaptive_matches_best_fixed"] else "TRAILS"
        print(
            f"adaptive batching {verdict} best fixed size "
            f"(batch={comparison['best_fixed_size']}) at the knee"
        )
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BFT SMR with asynchronous fallback (PODC'21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("protocols", help="list available protocol presets")

    run = sub.add_parser("run", help="run one cluster and report metrics")
    run.add_argument("--protocol", default="fallback-3chain", choices=sorted(PROTOCOLS))
    run.add_argument("--n", type=int, default=4)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--network", default="sync",
                     choices=["sync", "async", "attack", "gst", "partition"])
    run.add_argument("--commits", type=int, default=30)
    run.add_argument("--until", type=float, default=50_000.0)
    run.add_argument("--timeout", type=float, default=5.0, help="round timeout")
    run.add_argument("--delta", type=float, default=1.0, help="sync delay bound")
    run.add_argument("--gst", type=float, default=300.0)
    run.add_argument("--heal", type=float, default=60.0, help="partition heal time")
    run.add_argument("--preload", type=int, default=10_000)
    run.add_argument("--adoption", action="store_true",
                     help="enable fallback chain adoption")
    run.add_argument("--byzantine", action="append", default=[],
                     metavar="ID:BEHAVIOUR[@ARG]",
                     help="e.g. 0:withhold or 2:crash@25 (repeatable)")
    run.add_argument("--json", action="store_true")

    live = sub.add_parser(
        "live", help="run the protocol over real localhost TCP sockets"
    )
    live.add_argument("--protocol", default="fallback-3chain", choices=sorted(PROTOCOLS))
    live.add_argument("--n", type=int, default=4)
    live.add_argument("--seed", type=int, default=0)
    live.add_argument("--commits", type=int, default=20,
                      help="stop once every replica committed this many blocks")
    live.add_argument("--duration", type=float, default=None,
                      help="wall-clock budget in seconds (default 60; "
                           "replica processes run until signalled)")
    live.add_argument("--timeout", type=float, default=1.0, help="round timeout (s)")
    live.add_argument("--preload", type=int, default=1000)
    live.add_argument("--force-fallback", action="store_true",
                      help="stall Proposals mid-run to force a real view change")
    live.add_argument("--durable", action="store_true",
                      help="run DurableReplica (journaled safety state)")
    live.add_argument("--processes", action="store_true",
                      help="one OS process per replica under the supervisor")
    live.add_argument("--cluster-spec", default=None, metavar="PATH",
                      help="cluster spec JSON (with --replica)")
    live.add_argument("--replica", type=int, default=None, metavar="I",
                      help="run replica I as this process (supervisor spawn)")
    live.add_argument("--data-dir", default=None, metavar="DIR",
                      help="journals/status/logs directory for --processes "
                           "(default: fresh temp dir)")
    live.add_argument("--kills", type=int, default=0,
                      help="SIGKILL/restart chaos pairs for --processes")
    live.add_argument("--swarm", type=int, default=0, metavar="C",
                      help="drive C swarm clients at the cluster (--processes)")
    live.add_argument("--swarm-mode", default="closed", choices=["closed", "open"])
    live.add_argument("--fsync", action="store_true",
                      help="fsync the safety journal on every write")
    live.add_argument("--write-spec", default=None, metavar="PATH",
                      help="write the generated cluster spec and exit")
    live.add_argument("--json", action="store_true")

    lint = sub.add_parser(
        "lint", help="protocol-aware static analysis (see docs/STATIC_ANALYSIS.md)"
    )
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--rule", action="append", default=[],
                      metavar="RULE-ID", help="run only these rules (repeatable)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--src", default=None,
                      help="source root containing the repro package "
                           "(default: auto-detected)")
    lint.add_argument("--tests", default=None,
                      help="tests root scanned for wire round-trip coverage "
                           "(default: <repo>/tests when present)")
    lint.add_argument("--no-tests", action="store_true",
                      help="skip the tests root entirely")
    lint.add_argument("--fail-on", choices=["error", "warning"], default="error",
                      help="exit non-zero on errors only (default) or on "
                           "any finding including warnings")
    lint.add_argument("--graph", nargs="?", const="-", default=None,
                      metavar="FILE",
                      help="instead of linting, dump the interprocedural "
                           "call graph as JSON to FILE (stdout by default)")
    lint.add_argument("--graph-prefix", default=None, metavar="MODULE",
                      help="restrict --graph output to modules under this "
                           "dotted prefix (e.g. repro.core)")
    lint.add_argument("--effects", nargs="?", const="-", default=None,
                      metavar="FILE",
                      help="instead of linting, dump per-function effect "
                           "summaries (suspension points, self reads/writes, "
                           "tasks, blocking closure) as JSON to FILE "
                           "(stdout by default)")
    lint.add_argument("--effects-prefix", action="append", default=[],
                      metavar="MODULE",
                      help="restrict --effects output to modules under these "
                           "dotted prefixes (repeatable; e.g. repro.runtime)")
    lint.add_argument("--persistence", nargs="?", const="-", default=None,
                      metavar="FILE",
                      help="instead of linting, dump per-function persistence "
                           "summaries (safety-state mutations, journal ops, "
                           "file-write idioms, network sends) as JSON to FILE "
                           "(stdout by default)")
    lint.add_argument("--persistence-prefix", action="append", default=[],
                      metavar="MODULE",
                      help="restrict --persistence output to modules under "
                           "these dotted prefixes (repeatable; e.g. "
                           "repro.storage)")
    lint.add_argument("--changed", action="store_true",
                      help="lint only files changed vs git HEAD (plus "
                           "untracked files), widened to their call-graph "
                           "neighborhood so interprocedural rules still see "
                           "cross-function regressions")

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--n", type=int, default=4)
    table1.add_argument("--seed", type=int, default=1)
    table1.add_argument("--commits", type=int, default=30)
    table1.add_argument("--until", type=float, default=20_000.0)

    scaling = sub.add_parser("scaling", help="Theorem 9 scaling sweep")
    scaling.add_argument("--sizes", type=int, nargs="+", default=[4, 7, 10, 16])
    scaling.add_argument("--seed", type=int, default=2)
    scaling.add_argument("--until", type=float, default=50_000.0)

    saturate = sub.add_parser(
        "saturate",
        help="binary-search max sustainable throughput per scenario",
    )
    from repro.traffic.saturation import default_scenarios as _traffic_scenarios

    saturate.add_argument(
        "--scenario",
        default="all",
        choices=["all", *sorted(_traffic_scenarios())],
    )
    saturate.add_argument("--seed", type=int, default=1)
    saturate.add_argument("--duration", type=float, default=120.0,
                          help="offered-load window per probe (sim seconds)")
    saturate.add_argument("--drain", type=float, default=60.0,
                          help="post-window drain time per probe (sim seconds)")
    saturate.add_argument("--max-rate", type=float, default=1024.0)
    saturate.add_argument("--compare", action="store_true",
                          help="also run adaptive-vs-fixed batching at the "
                               "steady-n4 knee")
    saturate.add_argument("--json", type=Path, default=None,
                          help="write the full report to this file")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "protocols":
        return cmd_protocols(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "live":
        return cmd_live(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "table1":
        return cmd_table1(args)
    if args.command == "scaling":
        return cmd_scaling(args)
    if args.command == "saturate":
        return cmd_saturate(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
