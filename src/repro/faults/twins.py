"""Twins: duplicate-identity Byzantine replicas (Diem's testing method).

The Twins methodology (Bano et al., "Twins: BFT Systems Made Robust")
models Byzantine behaviour *without writing attack code*: run two honest
replica instances that share one cryptographic identity.  Each twin
processes messages and votes honestly — but independently — so together
they equivocate in every way a signature-holding adversary can: double
votes, conflicting proposals, divergent fallback chains, contradictory
timeouts.  Safety must survive because the protocol's quorum intersection
arguments only assume at most f *identities* misbehave.

:class:`TwinPair` hosts both instances behind one network process id and
delivers every incoming message to each twin; their outbound traffic is
interleaved on the shared identity.
"""

from __future__ import annotations

from repro.core.replica import Replica
from repro.sim.process import Process


class TwinPair(Process):
    """Two honest replicas sharing one identity (a Byzantine 'replica').

    Constructed with the standard replica factory signature, so it can be
    injected via ``ClusterBuilder.with_byzantine``.  The pair counts toward
    the Byzantine budget: it equivocates (with valid signatures!) whenever
    the twins' internal states diverge.
    """

    def __init__(
        self,
        replica_id: int,
        config,
        crypto,
        network,
        scheduler,
        mempool=None,
        state_machine=None,
        observer=None,
    ) -> None:
        super().__init__(replica_id, scheduler)
        self.network = network
        # Twins get separate mempools/ledgers/stores — only the identity
        # (crypto context + process id) is shared.  The shared observer is
        # not attached: twins are Byzantine, their metrics don't count.
        self.twin_a = Replica(
            replica_id, config, crypto, network, scheduler,
            mempool=None, state_machine=None, observer=None,
        )
        self.twin_b = Replica(
            replica_id, config, crypto, network, scheduler,
            mempool=None, state_machine=None, observer=None,
        )
        # Desynchronize the twins' transaction streams so their proposals
        # genuinely differ (observable equivocation).
        from repro.types.transactions import make_transaction

        for index in range(200):
            self.twin_a.mempool.submit(make_transaction(index, client=900 + replica_id))
            self.twin_b.mempool.submit(make_transaction(index, client=990 + replica_id))

    @property
    def twins(self) -> list[Replica]:
        return [self.twin_a, self.twin_b]

    def on_start(self) -> None:
        for twin in self.twins:
            twin.on_start()

    def on_message(self, sender: int, message: object) -> None:
        for twin in self.twins:
            twin.on_message(sender, message)

    def deliver(self, sender: int, message: object) -> None:
        if self.crashed:
            return
        self.on_message(sender, message)

    def crash(self) -> None:
        super().crash()
        for twin in self.twins:
            twin.crash()


def twin_pair_factory(*args, **kwargs) -> TwinPair:
    """Factory adapter for ``ClusterBuilder.with_byzantine``."""
    return TwinPair(*args, **kwargs)
