"""Byzantine fault injection."""

from repro.faults.advanced import (
    EquivocatingFallbackProposer,
    Flooder,
    LazyVoter,
)
from repro.faults.twins import TwinPair, twin_pair_factory
from repro.faults.behaviors import (
    CrashReplica,
    EquivocatingLeader,
    NonVoter,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)

__all__ = [
    "CrashReplica",
    "EquivocatingFallbackProposer",
    "EquivocatingLeader",
    "Flooder",
    "LazyVoter",
    "NonVoter",
    "SilentReplica",
    "StaleQCLeader",
    "TwinPair",
    "WithholdingLeader",
    "byzantine",
    "twin_pair_factory",
]
