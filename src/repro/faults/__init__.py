"""Byzantine fault injection and chaos scheduling."""

from repro.faults.advanced import (
    EquivocatingFallbackProposer,
    Flooder,
    LazyVoter,
)
from repro.faults.schedule import (
    FaultSchedule,
    clear_loss,
    crash,
    heal,
    inject,
    partition,
    recover,
    set_delay,
    set_loss,
)
from repro.faults.twins import TwinPair, twin_pair_factory
from repro.faults.behaviors import (
    CrashReplica,
    EquivocatingLeader,
    NonVoter,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)

__all__ = [
    "CrashReplica",
    "EquivocatingFallbackProposer",
    "EquivocatingLeader",
    "FaultSchedule",
    "Flooder",
    "LazyVoter",
    "NonVoter",
    "SilentReplica",
    "StaleQCLeader",
    "TwinPair",
    "WithholdingLeader",
    "byzantine",
    "clear_loss",
    "crash",
    "heal",
    "inject",
    "partition",
    "recover",
    "set_delay",
    "set_loss",
    "twin_pair_factory",
]
