"""Byzantine replica behaviours.

Each behaviour subclasses the honest :class:`~repro.core.replica.Replica`
and perturbs exactly one aspect, so tests can attribute failures precisely.
None of them forge cryptography (the ideal-model crypto forbids it); they
misbehave in the ways the protocol must tolerate: silence, crashes,
equivocation, withholding, and proposing stale state.

Use :func:`byzantine` to adapt a behaviour class (plus kwargs) into the
factory signature :class:`~repro.runtime.cluster.ClusterBuilder` expects::

    builder.with_byzantine(2, byzantine(EquivocatingLeader))
    builder.with_byzantine(1, byzantine(CrashReplica, crash_at=30.0))
"""

from __future__ import annotations

from typing import Callable

from repro.core.replica import Replica
from repro.sim.process import Process
from repro.types.blocks import Block
from repro.types.messages import Proposal
from repro.types.transactions import Batch, make_transaction


def byzantine(behavior: type, **kwargs) -> Callable[..., Process]:
    """Adapt a behaviour class into a ClusterBuilder replica factory."""

    def factory(*args, **factory_kwargs):
        return behavior(*args, **factory_kwargs, **kwargs)

    return factory


class SilentReplica(Replica):
    """Never sends anything: indistinguishable from crashed-from-start."""

    def on_start(self) -> None:
        self.crash()

    def on_message(self, sender: int, message: object) -> None:
        return None


class CrashReplica(Replica):
    """Honest until ``crash_at``, then permanently silent."""

    def __init__(self, *args, crash_at: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.crash_at = crash_at

    def on_start(self) -> None:
        super().on_start()
        self.scheduler.call_at(
            max(self.crash_at, self.scheduler.now),
            self.crash,
            label=f"crash:{self.process_id}",
        )


class NonVoter(Replica):
    """Participates in everything except voting (regular and fallback)."""

    def handle_proposal(self, sender: int, message) -> None:
        block = message.block
        if block.author != sender or self.schedule.leader(block.round) != sender:
            return
        if block.qc is None:
            return
        self.store.add(block)
        self.process_certificate(block.qc)  # keeps its state fresh, never votes

    def on_message(self, sender: int, message: object) -> None:
        from repro.types.messages import FallbackProposal

        if isinstance(message, FallbackProposal):
            # Track blocks, never vote.
            self.store.add(message.fblock)
            return
        super().on_message(sender, message)


class WithholdingLeader(Replica):
    """Honest except that it never proposes (forces timeouts on its turns)."""

    def maybe_propose(self) -> None:
        return None


class EquivocatingLeader(Replica):
    """Proposes two conflicting blocks for its round, half the cluster each.

    The block ids differ (different batches), so at most one can gather a
    quorum; safety must hold regardless.
    """

    def maybe_propose(self) -> None:
        if self.fallback_mode or self.schedule.leader(self.r_cur) != self.process_id:
            return
        key = (self.v_cur, self.r_cur)
        if key in self._proposed:
            return
        self._proposed.add(key)
        batch_a = self.mempool.next_batch()
        batch_b = Batch.of(
            [make_transaction(index=self.r_cur, client=666, payload="evil")]
        )
        block_a = Block(
            qc=self.qc_high, round=self.r_cur, view=self.v_cur,
            batch=batch_a, author=self.process_id,
        )
        block_b = Block(
            qc=self.qc_high, round=self.r_cur, view=self.v_cur,
            batch=batch_b, author=self.process_id,
        )
        self.store.add(block_a)
        self.store.add(block_b)
        for receiver in self.network.process_ids():
            chosen = block_a if receiver % 2 == 0 else block_b
            self.network.send(self.process_id, receiver, Proposal(chosen))


class StaleQCLeader(Replica):
    """Always proposes extending the genesis QC (a stale certificate).

    Honest voters reject it (the qc.rank >= rank_lock and r == qc.r + 1
    checks), so its rounds time out.
    """

    def maybe_propose(self) -> None:
        if self.fallback_mode or self.schedule.leader(self.r_cur) != self.process_id:
            return
        key = (self.v_cur, self.r_cur)
        if key in self._proposed:
            return
        self._proposed.add(key)
        from repro.types.certificates import genesis_qc

        block = Block(
            qc=genesis_qc(self.store.genesis.id),
            round=self.r_cur,
            view=self.v_cur,
            batch=self.mempool.next_batch(),
            author=self.process_id,
        )
        self.store.add(block)
        self.network.multicast(self.process_id, Proposal(block))
