"""Additional Byzantine behaviours targeting the fallback path and the
message layer.

- :class:`EquivocatingFallbackProposer` equivocates *inside the fallback*:
  two different height-1 f-blocks to different halves of the cluster.  The
  per-proposer vote maps (h̄_vote[j]) must prevent both from certifying.
- :class:`LazyVoter` participates only intermittently (votes every other
  round): the protocol must stay live as long as quorums still form.
- :class:`Flooder` sprays garbage messages: replicas must ignore unknown
  message types, and the metrics layer must not bill Byzantine traffic to
  the protocol.
"""

from __future__ import annotations

from repro.core.fallback import FallbackEngine
from repro.core.replica import Replica
from repro.types.blocks import FallbackBlock
from repro.types.certificates import FallbackTC
from repro.types.messages import FallbackProposal
from repro.types.transactions import Batch, make_transaction


class _EquivocatingFallbackEngine(FallbackEngine):
    """Height-1 equivocation: different f-blocks to each half."""

    def _propose_height1(self, ftc: FallbackTC) -> None:
        replica = self.replica
        view = ftc.view
        base = dict(
            qc=replica.qc_high,
            round=replica.qc_high.round + 1,
            view=view,
            height=1,
            proposer=replica.process_id,
        )
        block_a = FallbackBlock(batch=replica.next_valid_batch(), **base)
        block_b = FallbackBlock(
            batch=Batch.of([make_transaction(view, client=66, payload="fork")]),
            **base,
        )
        replica.store.add(block_a)
        replica.store.add(block_b)
        # Track one of them as "ours" so votes for it still aggregate.
        state = self._view_state(view)
        state.own_blocks[1] = block_a
        if state.max_proposed_height < 1:
            state.max_proposed_height = 1
        for receiver in replica.network.process_ids():
            chosen = block_a if receiver % 2 == 0 else block_b
            replica.network.send(
                replica.process_id, receiver, FallbackProposal(fblock=chosen, ftc=ftc)
            )


class EquivocatingFallbackProposer(Replica):
    """Byzantine replica that equivocates its fallback chain."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.fallback is not None:
            self.fallback = _EquivocatingFallbackEngine(self)


class LazyVoter(Replica):
    """Votes only for even rounds (intermittent participation)."""

    def handle_proposal(self, sender: int, message) -> None:
        if message.block.round % 2 == 1 and message.block.round > 1:
            # Track state but skip voting for odd rounds.
            block = message.block
            if block.author != sender or self.schedule.leader(block.round) != sender:
                return
            if block.qc is None:
                return
            self.store.add(block)
            self.process_certificate(block.qc)
            return
        super().handle_proposal(sender, message)


class _Garbage:
    """An unknown message type with a wire size (ignored by replicas)."""

    def wire_size(self) -> int:
        return 1000


class Flooder(Replica):
    """Honest protocol participation plus a stream of garbage messages."""

    FLOOD_TIMER = "flood"

    def __init__(self, *args, flood_interval: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.flood_interval = flood_interval

    def on_start(self) -> None:
        super().on_start()
        self.set_timer(self.FLOOD_TIMER, self.flood_interval)

    def on_timer(self, name: str) -> None:
        if name == self.FLOOD_TIMER:
            self.network.multicast(self.process_id, _Garbage(), include_self=False)
            self.set_timer(self.FLOOD_TIMER, self.flood_interval)
            return
        super().on_timer(name)
