"""Composable chaos-injection schedules.

A :class:`FaultSchedule` scripts timed fault events against a running
cluster: loss-rate changes, partitions and heals, crash/recover of
replicas, and delay-model swaps.  Events compose — a partition layered on
20% i.i.d. loss keeps the loss on intra-partition traffic, and healing
restores exactly the loss model that was active before the split.

Usage::

    schedule = (
        FaultSchedule()
        .at(10.0, set_loss(IIDLoss(drop=0.2)))
        .at(30.0, partition([[0, 1], [2, 3]]))
        .at(60.0, heal())
        .at(80.0, crash(2))
        .at(120.0, recover(2))
        .at(150.0, clear_loss())
    )
    cluster = (
        ClusterBuilder(n=4, seed=7)
        .with_honest_factory(2, RecoveringReplica.factory())
        .with_fault_schedule(schedule)
        .build()
    )

Any schedule containing loss events forces the builder onto
:class:`~repro.net.reliable.ReliableNetwork`, so the protocol keeps its
reliable-link abstraction while the transport misbehaves.  Applied events
are recorded on ``cluster.fault_log`` for post-run inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.net.conditions import DelayModel
from repro.net.loss import LossModel, NoLoss, PartitionLoss


class FaultAction:
    """One scripted intervention.  Subclasses override :meth:`apply`."""

    #: True for actions that make the transport lossy (the builder then
    #: must install reliable channels to preserve protocol guarantees).
    needs_reliable_channels = False

    def apply(self, runtime: "ScheduleRuntime") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class SetLoss(FaultAction):
    """Install a loss model (replacing the current one)."""

    needs_reliable_channels = True

    def __init__(self, model: LossModel) -> None:
        self.model = model

    def apply(self, runtime: "ScheduleRuntime") -> None:
        runtime.cluster.network.set_loss_model(self.model)

    def describe(self) -> str:
        return f"set-loss({self.model.describe()})"


class SetDelay(FaultAction):
    """Install a delay model (replacing the current one)."""

    def __init__(self, model: DelayModel) -> None:
        self.model = model

    def apply(self, runtime: "ScheduleRuntime") -> None:
        runtime.cluster.network.set_delay_model(self.model)

    def describe(self) -> str:
        return f"set-delay({self.model.describe()})"


class Partition(FaultAction):
    """Drop all cross-group traffic, layered over the active loss model."""

    needs_reliable_channels = True

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        self.groups = [list(group) for group in groups]

    def apply(self, runtime: "ScheduleRuntime") -> None:
        network = runtime.cluster.network
        runtime.partition_stack.append(network.loss_model)
        network.set_loss_model(PartitionLoss(self.groups, base=network.loss_model))

    def describe(self) -> str:
        return f"partition({self.groups})"


class Heal(FaultAction):
    """Undo the most recent partition, restoring the prior loss model."""

    needs_reliable_channels = True

    def apply(self, runtime: "ScheduleRuntime") -> None:
        if not runtime.partition_stack:
            raise ValueError("heal() without a preceding partition()")
        runtime.cluster.network.set_loss_model(runtime.partition_stack.pop())

    def describe(self) -> str:
        return "heal"


class Crash(FaultAction):
    """Crash a replica (it stops processing input and firing timers)."""

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id

    def apply(self, runtime: "ScheduleRuntime") -> None:
        runtime.cluster.replicas[self.replica_id].crash()

    def describe(self) -> str:
        return f"crash({self.replica_id})"


class Recover(FaultAction):
    """Recover a previously crashed replica.

    The replica must support recovery — build it with
    ``ClusterBuilder.with_honest_factory(i, RecoveringReplica.factory())``
    (journaled safety state; volatile state rebuilt via catch-up sync).
    """

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id

    def apply(self, runtime: "ScheduleRuntime") -> None:
        replica = runtime.cluster.replicas[self.replica_id]
        recover = getattr(replica, "recover", None)
        if not callable(recover):
            raise TypeError(
                f"replica {self.replica_id} ({type(replica).__name__}) cannot "
                "recover; build it from RecoveringReplica.factory()"
            )
        recover()

    def describe(self) -> str:
        return f"recover({self.replica_id})"


class Inject(FaultAction):
    """Escape hatch: run an arbitrary callable against the cluster."""

    def __init__(self, fn: Callable[["Cluster"], None], label: str = "") -> None:
        self.fn = fn
        self.label = label

    def apply(self, runtime: "ScheduleRuntime") -> None:
        self.fn(runtime.cluster)

    def describe(self) -> str:
        return f"inject({self.label or getattr(self.fn, '__name__', '?')})"


# ----------------------------------------------------------------------
# DSL constructors
# ----------------------------------------------------------------------
def set_loss(model: LossModel) -> SetLoss:
    return SetLoss(model)


def clear_loss() -> SetLoss:
    return SetLoss(NoLoss())


def set_delay(model: DelayModel) -> SetDelay:
    return SetDelay(model)


def partition(groups: Sequence[Sequence[int]]) -> Partition:
    return Partition(groups)


def heal() -> Heal:
    return Heal()


def crash(replica_id: int) -> Crash:
    return Crash(replica_id)


def recover(replica_id: int) -> Recover:
    return Recover(replica_id)


def inject(fn: Callable, label: str = "") -> Inject:
    return Inject(fn, label=label)


# ----------------------------------------------------------------------
# The schedule itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    time: float
    action: FaultAction

    def describe(self) -> str:
        return f"t={self.time}: {self.action.describe()}"


@dataclass
class ScheduleRuntime:
    """Mutable state shared by a schedule's events during one run."""

    cluster: "Cluster"
    partition_stack: list[LossModel] = field(default_factory=list)
    applied: list[tuple[float, str]] = field(default_factory=list)


class FaultSchedule:
    """An ordered script of timed fault events (see module docstring)."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: list[FaultEvent] = list(events)

    def at(self, time: float, action: FaultAction) -> "FaultSchedule":
        """Append an event; returns self for chaining."""
        if time < 0:
            raise ValueError("fault events cannot be scheduled before time 0")
        if not isinstance(action, FaultAction):
            raise TypeError(f"expected a FaultAction, got {type(action).__name__}")
        self.events.append(FaultEvent(time=time, action=action))
        return self

    @property
    def needs_reliable_channels(self) -> bool:
        return any(event.action.needs_reliable_channels for event in self.events)

    def install(self, cluster: "Cluster") -> ScheduleRuntime:
        """Schedule every event on the cluster's scheduler (idempotent per
        builder: call once, at build time)."""
        runtime = ScheduleRuntime(cluster=cluster)
        for event in sorted(self.events, key=lambda e: e.time):
            cluster.scheduler.call_at(
                event.time,
                lambda event=event: self._apply(runtime, event),
                label=f"fault:{event.action.describe()}",
            )
        return runtime

    @staticmethod
    def _apply(runtime: ScheduleRuntime, event: FaultEvent) -> None:
        event.action.apply(runtime)
        runtime.applied.append((runtime.cluster.scheduler.now, event.action.describe()))
        runtime.cluster.fault_log.append(
            (runtime.cluster.scheduler.now, event.action.describe())
        )

    def describe(self) -> str:
        return "; ".join(event.describe() for event in sorted(self.events, key=lambda e: e.time))
