"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper reports (Table 1 and
the per-claim experiments); this module holds the small formatting helpers
so every bench renders consistently.
"""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with per-column width, suitable for tee'd logs."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in text_rows)) if text_rows else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def fmt_cost(cost: Optional[float]) -> str:
    """Format a per-decision cost; None means the protocol was not live."""
    if cost is None:
        return "no decisions (not live)"
    return f"{cost:.1f}"


def render_scaling_table(fits: Sequence) -> str:
    """Render :class:`~repro.analysis.complexity.ScalingFit` rows next to
    Table 1's claimed exponents (messages rows only carry a claim)."""
    rows = []
    for fit in fits:
        claimed = f"n^{fit.claimed:.0f}" if fit.claimed is not None else "-"
        verdict = "ok" if fit.matches_claim() else "MISMATCH"
        rows.append(
            [
                fit.regime,
                fit.metric,
                f"n^{fit.slope:.2f}",
                fit.label,
                claimed,
                verdict if fit.claimed is not None else "-",
            ]
        )
    return render_table(
        ["regime", "metric", "fitted", "class", "Table 1", "verdict"],
        rows,
        title="Scaling exponents (log-log fit of per-decision cost vs n)",
    )
