"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper reports (Table 1 and
the per-claim experiments); this module holds the small formatting helpers
so every bench renders consistently.
"""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with per-column width, suitable for tee'd logs."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in text_rows)) if text_rows else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def fmt_cost(cost: Optional[float]) -> str:
    """Format a per-decision cost; None means the protocol was not live."""
    if cost is None:
        return "no decisions (not live)"
    return f"{cost:.1f}"
