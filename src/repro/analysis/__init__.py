"""Analysis: global safety checking, complexity fits, result tables."""

from repro.analysis.complexity import fit_loglog_slope, per_decision_costs
from repro.analysis.safety import SafetyViolation, check_cluster_safety

__all__ = [
    "SafetyViolation",
    "check_cluster_safety",
    "fit_loglog_slope",
    "per_decision_costs",
]
