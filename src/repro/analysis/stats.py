"""Statistics helpers for multi-seed experiments.

Single-run numbers are deterministic given a seed, but claims like
"the fallback commits with probability ≥ 2/3" are statistical: the benches
repeat runs over seeds and report means with confidence intervals.  These
helpers wrap the small amount of scipy needed for that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class Estimate:
    """A mean with a symmetric confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float
    samples: int

    def __str__(self) -> str:
        return (
            f"{self.mean:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence:.0%} (n={self.samples})"
        )

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Student-t confidence interval for the mean of ``values``."""
    if not values:
        raise ValueError("need at least one sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Estimate(mean=mean, low=mean, high=mean, confidence=confidence, samples=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    if sem == 0:
        return Estimate(mean=mean, low=mean, high=mean, confidence=confidence, samples=n)
    half_width = float(_scipy_stats.t.ppf((1 + confidence) / 2, n - 1)) * sem
    return Estimate(
        mean=mean,
        low=mean - half_width,
        high=mean + half_width,
        confidence=confidence,
        samples=n,
    )


def proportion_ci(successes: int, trials: int, confidence: float = 0.95) -> Estimate:
    """Wilson score interval for a binomial proportion.

    Used for Lemma 7's per-fallback commit probability: robust at small
    sample sizes where the normal approximation misbehaves.
    """
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    z = float(_scipy_stats.norm.ppf((1 + confidence) / 2))
    phat = successes / trials
    denominator = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    # In exact arithmetic the Wilson interval always contains phat (it
    # equals the bound exactly at 0/n and n/n); clamp away float noise.
    low = min(max(0.0, center - margin), phat)
    high = max(min(1.0, center + margin), phat)
    return Estimate(
        mean=phat,
        low=low,
        high=high,
        confidence=confidence,
        samples=trials,
    )
