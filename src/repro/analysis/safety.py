"""Global safety checking across a cluster's replicas.

These checks correspond to the paper's theorems and lemmas:

- **Theorem 6 (Safety)**: committed logs at honest replicas agree at every
  position (prefix consistency).
- **Lemma 1**: no two distinct certified/endorsed blocks share a (view,
  round) — checked over the blocks that actually got committed.
- **Lemma 2**: along any committed chain, adjacent blocks have consecutive
  round numbers and nondecreasing view numbers.

The checker is used by tests after every adversarial run: a run "passes"
only if the whole cluster state satisfies these invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.replica import Replica


@dataclass
class SafetyViolation:
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


def check_cluster_safety(replicas: Sequence[Replica]) -> list[SafetyViolation]:
    """Run all safety checks; returns the (hopefully empty) violation list."""
    violations: list[SafetyViolation] = []
    violations.extend(_check_prefix_consistency(replicas))
    violations.extend(_check_unique_per_round(replicas))
    for replica in replicas:
        violations.extend(_check_chain_laws(replica))
    return violations


def assert_cluster_safety(replicas: Sequence[Replica]) -> None:
    violations = check_cluster_safety(replicas)
    if violations:
        summary = "; ".join(str(violation) for violation in violations[:5])
        raise AssertionError(
            f"{len(violations)} safety violation(s): {summary}"
        )


def _check_prefix_consistency(replicas: Sequence[Replica]) -> list[SafetyViolation]:
    """Theorem 6: same block id at every common log position."""
    violations = []
    logs = [replica.ledger.committed_ids() for replica in replicas]
    if not logs:
        return violations
    for position in range(max(len(log) for log in logs)):
        ids_here = {
            (replica.process_id, log[position])
            for replica, log in zip(replicas, logs)
            if position < len(log)
        }
        distinct = {block_id for _, block_id in ids_here}
        if len(distinct) > 1:
            violations.append(
                SafetyViolation(
                    kind="prefix-divergence",
                    detail=f"position {position} has blocks {sorted(distinct)}",
                )
            )
    return violations


def _check_unique_per_round(replicas: Sequence[Replica]) -> list[SafetyViolation]:
    """Lemma 1 over committed blocks: one block per (view, round, kind)."""
    violations = []
    seen: dict[tuple, str] = {}
    for replica in replicas:
        for block in replica.ledger.committed_blocks():
            kind = type(block).__name__
            key = (block.view, block.round, kind)
            existing = seen.get(key)
            if existing is None:
                seen[key] = block.id
            elif existing != block.id:
                violations.append(
                    SafetyViolation(
                        kind="duplicate-round",
                        detail=(
                            f"two committed {kind}s at view {block.view} round "
                            f"{block.round}: {existing[:8]} vs {block.id[:8]}"
                        ),
                    )
                )
    return violations


def _check_chain_laws(replica: Replica) -> list[SafetyViolation]:
    """Lemma 2 along the replica's committed chain.

    The consecutive-round law only binds the fallback variants (their Vote
    rule requires r == qc.r + 1); the original DiemBFT pacemaker advances
    rounds via TCs, so its chains may legitimately skip round numbers.
    """
    violations = []
    blocks = replica.ledger.committed_blocks()
    previous = replica.store.genesis
    strict_rounds = replica.config.strict_round_chaining
    for block in blocks:
        if block.parent_id != previous.id:
            violations.append(
                SafetyViolation(
                    kind="broken-chain",
                    detail=(
                        f"replica {replica.process_id}: block r={block.round} does "
                        f"not extend the previous committed block"
                    ),
                )
            )
        if strict_rounds and block.round != previous.round + 1:
            violations.append(
                SafetyViolation(
                    kind="non-consecutive-rounds",
                    detail=(
                        f"replica {replica.process_id}: rounds {previous.round} -> "
                        f"{block.round}"
                    ),
                )
            )
        elif block.round <= previous.round:
            violations.append(
                SafetyViolation(
                    kind="non-increasing-rounds",
                    detail=(
                        f"replica {replica.process_id}: rounds {previous.round} -> "
                        f"{block.round}"
                    ),
                )
            )
        if block.view < previous.view:
            violations.append(
                SafetyViolation(
                    kind="decreasing-views",
                    detail=(
                        f"replica {replica.process_id}: views {previous.view} -> "
                        f"{block.view}"
                    ),
                )
            )
        previous = block
    return violations


def divergence_point(a: Replica, b: Replica) -> Optional[int]:
    """First log position where two replicas disagree (None if consistent)."""
    log_a, log_b = a.ledger.committed_ids(), b.ledger.committed_ids()
    for position in range(min(len(log_a), len(log_b))):
        if log_a[position] != log_b[position]:
            return position
    return None
