"""Communication-complexity analysis: per-decision costs and scaling fits.

Theorem 9 claims O(n) messages per decision under synchrony with honest
leaders and O(n²) under asynchrony.  ``fit_loglog_slope`` turns a sweep of
(n, cost) points into the empirical exponent: slope ≈ 1 means linear,
slope ≈ 2 quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.runtime.metrics import MetricsCollector


@dataclass
class DecisionCosts:
    """Per-decision communication cost extracted from one run."""

    decisions: int
    messages_per_decision: Optional[float]
    bytes_per_decision: Optional[float]
    steady_messages: int
    view_change_messages: int

    @property
    def live(self) -> bool:
        return self.decisions > 0


def per_decision_costs(metrics: MetricsCollector) -> DecisionCosts:
    phases = metrics.phase_messages()
    return DecisionCosts(
        decisions=metrics.decisions(),
        messages_per_decision=metrics.messages_per_decision(),
        bytes_per_decision=metrics.bytes_per_decision(),
        steady_messages=phases["steady"],
        view_change_messages=phases["view_change"],
    )


def live_decision_costs(metrics: MetricsCollector) -> DecisionCosts:
    """Per-decision costs from a live run, validated against real bytes.

    Live-mode metrics bill every honest send at its true codec-encoded
    frame size (``MetricsCollector.on_wire_send``), so ``honest_bytes``
    must equal ``encoded_bytes`` exactly — a divergence means some path
    still billed modeled estimates, which would silently mix the two
    accounting regimes in one figure.
    """
    if metrics.encoded_bytes != metrics.honest_bytes:
        raise ValueError(
            f"live metrics mix real and modeled bytes: encoded="
            f"{metrics.encoded_bytes} vs honest={metrics.honest_bytes}"
        )
    return per_decision_costs(metrics)


def fit_loglog_slope(ns: Sequence[int], costs: Sequence[float]) -> float:
    """Least-squares slope of log(cost) vs log(n).

    Requires at least two points with positive cost; raises ValueError
    otherwise (a protocol with zero decisions has no per-decision cost —
    report liveness separately instead of feeding it here).
    """
    points = [
        (n, cost)
        for n, cost in zip(ns, costs)
        if cost is not None and cost > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two positive-cost points to fit a slope")
    log_n = np.log([n for n, _ in points])
    log_cost = np.log([cost for _, cost in points])
    slope, _intercept = np.polyfit(log_n, log_cost, 1)
    return float(slope)


def classify_complexity(slope: float, tolerance: float = 0.35) -> str:
    """Human label for a fitted exponent: 'linear', 'quadratic', or raw."""
    if abs(slope - 1.0) <= tolerance:
        return "linear"
    if abs(slope - 2.0) <= tolerance:
        return "quadratic"
    return f"~n^{slope:.2f}"


#: Table 1's claimed asymptotic message complexity per decision, as an
#: exponent of n.  The steady path is linear (leader collects votes, one
#: proposal + n votes per decision); the fallback is quadratic (every
#: replica drives its own leaderless chain, all-to-all per view).
TABLE1_EXPONENTS = {
    "steady": 1.0,
    "fallback": 2.0,
}


@dataclass
class ScalingFit:
    """A fitted scaling exponent for one regime/metric, vs the paper."""

    regime: str  # "steady" | "fallback"
    metric: str  # "messages" | "bytes"
    ns: tuple[int, ...]
    costs: tuple[float, ...]
    slope: float
    claimed: Optional[float]

    @property
    def label(self) -> str:
        return classify_complexity(self.slope)

    def matches_claim(self, tolerance: float = 0.5) -> bool:
        """Does the measured exponent agree with Table 1?

        ``bytes`` fits get no claim (the paper states message complexity);
        they always "match".  The tolerance is loose by design: small-n
        sweeps carry constant-factor contamination (the +1 in n+1 messages
        matters at n=4), so this guards regressions, not decimals.
        """
        if self.claimed is None:
            return True
        return abs(self.slope - self.claimed) <= tolerance


def fit_sweep(
    regime: str, metric: str, ns: Sequence[int], costs: Sequence[float]
) -> ScalingFit:
    """Fit one sweep's scaling exponent and pair it with Table 1's claim."""
    claimed = TABLE1_EXPONENTS.get(regime) if metric == "messages" else None
    return ScalingFit(
        regime=regime,
        metric=metric,
        ns=tuple(ns),
        costs=tuple(costs),
        slope=fit_loglog_slope(ns, costs),
        claimed=claimed,
    )
