"""Structured run timelines (the data behind Figure-3-style plots).

``Timeline`` turns a finished cluster's metrics into an ordered list of
typed events (round entries, timeouts, fallback entry/exit, commits), with
filters and an ASCII rendering.  Examples and debugging sessions use it to
see *what happened when* without groveling through raw metric lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.runtime.cluster import Cluster


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    time: float
    kind: str  # round | timeout | fallback-enter | fallback-exit | commit
    replica: int
    detail: str

    def render(self) -> str:
        return f"t={self.time:9.2f}  r{self.replica}  {self.kind:<14s} {self.detail}"


@dataclass
class Timeline:
    """Ordered trace of a run."""

    events: list[TraceEvent] = field(default_factory=list)

    @classmethod
    def from_cluster(cls, cluster: Cluster) -> "Timeline":
        events: list[TraceEvent] = []
        for replica, round_number, time in cluster.metrics.round_entries:
            events.append(
                TraceEvent(time, "round", replica, f"entered round {round_number}")
            )
        for replica, view, round_number, time in cluster.metrics.timeouts:
            events.append(
                TraceEvent(
                    time, "timeout", replica,
                    f"round {round_number} timed out (view {view})",
                )
            )
        for fb in cluster.metrics.fallback_events:
            if fb.kind == "entered":
                events.append(
                    TraceEvent(fb.time, "fallback-enter", fb.replica, f"view {fb.view}")
                )
            else:
                events.append(
                    TraceEvent(
                        fb.time, "fallback-exit", fb.replica,
                        f"view {fb.view}, coin elected {fb.leader}",
                    )
                )
        for commit in cluster.metrics.commits:
            kind = "f-block" if commit.fallback_block else "block"
            events.append(
                TraceEvent(
                    commit.time, "commit", commit.replica,
                    f"{kind} #{commit.position} (round {commit.round}, view {commit.view})",
                )
            )
        events.sort(key=lambda event: (event.time, event.replica, event.kind))
        return cls(events=events)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def filter(
        self,
        kinds: Optional[Iterable[str]] = None,
        replica: Optional[int] = None,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> "Timeline":
        kind_set = set(kinds) if kinds is not None else None
        return Timeline(
            events=[
                event
                for event in self.events
                if (kind_set is None or event.kind in kind_set)
                and (replica is None or event.replica == replica)
                and start <= event.time <= end
            ]
        )

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def fallback_spans(self) -> list[tuple[int, int, float, Optional[float]]]:
        """(replica, view, entered_at, exited_at|None) per fallback."""
        entered: dict[tuple[int, int], float] = {}
        spans: list[tuple[int, int, float, Optional[float]]] = []
        for event in self.events:
            key = (event.replica, _view_of(event))
            if event.kind == "fallback-enter":
                entered[key] = event.time
            elif event.kind == "fallback-exit" and key in entered:
                spans.append((event.replica, key[1], entered.pop(key), event.time))
        for (replica, view), start in entered.items():
            spans.append((replica, view, start, None))
        spans.sort(key=lambda span: span[2])
        return spans

    def render(self, limit: Optional[int] = None) -> str:
        chosen = self.events if limit is None else self.events[:limit]
        return "\n".join(event.render() for event in chosen)


def _view_of(event: TraceEvent) -> int:
    # Detail strings for fallback events start with "view <v>".
    try:
        return int(event.detail.split()[1].rstrip(","))
    except (IndexError, ValueError):
        return -1
