"""Reusable experiment scenarios shared by examples and benchmarks."""

from repro.experiments.scenarios import (
    build_cluster,
    leader_attack_factory,
    run_async_attack,
    run_sync,
    table1_cell,
)

__all__ = [
    "build_cluster",
    "leader_attack_factory",
    "run_async_attack",
    "run_sync",
    "table1_cell",
]
