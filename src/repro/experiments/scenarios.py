"""Canonical experiment scenarios.

Every benchmark and example builds its runs through these helpers, so "run
protocol P at size n under network N" means the same thing everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.net.conditions import DelayModel, LeaderTargetingAdversary, SynchronousDelay
from repro.protocols.presets import preset
from repro.runtime.cluster import Cluster, ClusterBuilder, RunResult
from repro.runtime.parallel import run_seed_sweep

#: Attack delay used by the leader-targeting asynchronous adversary.  Far
#: beyond the default 5s round timeout, so targeted rounds always fail.
ATTACK_DELAY = 60.0


def leader_attack_factory(
    attack_delay: float = ATTACK_DELAY,
) -> Callable[[Cluster], DelayModel]:
    """Delay-model factory wiring the adversary to the cluster's leader
    oracle (the adversary always knows the current leaders)."""

    def factory(cluster: Cluster) -> DelayModel:
        return LeaderTargetingAdversary(
            targets=cluster.current_leaders, attack_delay=attack_delay
        )

    return factory


def build_cluster(
    protocol: str,
    n: int,
    seed: int = 0,
    delay_model: Optional[DelayModel] = None,
    delay_factory: Optional[Callable[[Cluster], DelayModel]] = None,
    config: Optional[ProtocolConfig] = None,
    preload: int = 10_000,
) -> Cluster:
    """Build a cluster for a named protocol preset."""
    if config is None:
        config = preset(protocol).config(n)
    builder = ClusterBuilder(config=config, seed=seed).with_preload(preload)
    if delay_factory is not None:
        builder.with_delay_model_factory(delay_factory)
    else:
        builder.with_delay_model(delay_model or SynchronousDelay())
    return builder.build()


@dataclass
class ScenarioResult:
    """Uniform result record for table-producing experiments."""

    protocol: str
    n: int
    network: str
    decisions: int
    messages_per_decision: Optional[float]
    bytes_per_decision: Optional[float]
    fallbacks: int
    duration: float

    @property
    def live(self) -> bool:
        return self.decisions > 0


def run_sync(
    protocol: str,
    n: int,
    seed: int = 0,
    target_commits: int = 50,
    until: float = 20_000.0,
) -> ScenarioResult:
    """Synchronous network, honest replicas — the paper's fast-path cell."""
    cluster = build_cluster(protocol, n, seed=seed)
    result = cluster.run_until_commits(target_commits, until=until)
    return _summarize(protocol, n, "sync", cluster, result)


def run_async_attack(
    protocol: str,
    n: int,
    seed: int = 0,
    target_commits: int = 10,
    until: float = 50_000.0,
) -> ScenarioResult:
    """Leader-targeting asynchronous adversary — the paper's bad-network cell.

    The run also stops at ``until`` even with zero commits, which is how the
    DiemBFT baseline's liveness failure is recorded.
    """
    cluster = build_cluster(protocol, n, seed=seed, delay_factory=leader_attack_factory())
    result = cluster.run_until_commits(target_commits, until=until)
    return _summarize(protocol, n, "async(leader-attack)", cluster, result)


def sweep_sync(
    protocol: str,
    n: int,
    seeds: Sequence[int],
    target_commits: int = 50,
    until: float = 20_000.0,
    processes: Optional[int] = None,
) -> list[ScenarioResult]:
    """:func:`run_sync` over many seeds, one worker process per core.

    Each seed is an independent deterministic run, so the sweep returns
    exactly what a serial loop would — just faster on multicore hosts.
    """
    task = partial(
        _run_sync_seed, protocol, n, target_commits=target_commits, until=until
    )
    return run_seed_sweep(task, seeds, processes=processes)


def sweep_async_attack(
    protocol: str,
    n: int,
    seeds: Sequence[int],
    target_commits: int = 10,
    until: float = 50_000.0,
    processes: Optional[int] = None,
) -> list[ScenarioResult]:
    """:func:`run_async_attack` over many seeds, in parallel."""
    task = partial(
        _run_async_seed, protocol, n, target_commits=target_commits, until=until
    )
    return run_seed_sweep(task, seeds, processes=processes)


def _run_sync_seed(
    protocol: str, n: int, seed: int, target_commits: int, until: float
) -> ScenarioResult:
    # Module-level so functools.partial over it pickles into fork workers.
    return run_sync(protocol, n, seed=seed, target_commits=target_commits, until=until)


def _run_async_seed(
    protocol: str, n: int, seed: int, target_commits: int, until: float
) -> ScenarioResult:
    return run_async_attack(
        protocol, n, seed=seed, target_commits=target_commits, until=until
    )


def table1_cell(protocol: str, n: int, network: str, seed: int = 0) -> ScenarioResult:
    """One cell of the reproduced Table 1."""
    if network == "sync":
        return run_sync(protocol, n, seed=seed)
    if network == "async":
        return run_async_attack(protocol, n, seed=seed)
    raise ValueError(f"unknown network regime {network!r}")


def _summarize(
    protocol: str, n: int, network: str, cluster: Cluster, result: RunResult
) -> ScenarioResult:
    metrics = cluster.metrics
    return ScenarioResult(
        protocol=protocol,
        n=n,
        network=network,
        decisions=metrics.decisions(),
        messages_per_decision=metrics.messages_per_decision(),
        bytes_per_decision=metrics.bytes_per_decision(),
        fallbacks=metrics.fallback_count(),
        duration=result.stopped_at,
    )
